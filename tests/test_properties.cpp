// Property-based tests: invariants that must hold for EVERY scheduling
// policy on EVERY scenario/intensity. Parameterized over the full policy
// registry cross intensity presets.
#include <gtest/gtest.h>

#include <tuple>

#include "core/trace.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "reports/metrics.hpp"
#include "sched/registry.hpp"
#include "workload/generator.hpp"

namespace {

using e2c::sched::Simulation;
using e2c::workload::Intensity;
using e2c::workload::TaskDef;
using e2c::workload::TaskStatus;

struct PropertyCase {
  std::string policy;
  Intensity intensity;
  bool heterogeneous;
};

std::vector<PropertyCase> all_cases() {
  std::vector<PropertyCase> cases;
  for (const std::string policy : {"FCFS", "MEET", "MECT", "MM", "MMU", "MSD", "ELARE",
                                   "FELARE", "FairShare", "PAM"}) {
    for (Intensity intensity : {Intensity::kLow, Intensity::kMedium, Intensity::kHigh}) {
      for (bool heterogeneous : {false, true}) {
        cases.push_back({policy, intensity, heterogeneous});
      }
    }
  }
  return cases;
}

class PolicyInvariantTest : public testing::TestWithParam<PropertyCase> {
 protected:
  // Builds and runs one simulation for the parameter case; also records the
  // trace for ordering checks.
  void run_case() {
    const PropertyCase& param = GetParam();
    system_ = param.heterogeneous ? e2c::exp::heterogeneous_classroom(2)
                                  : e2c::exp::homogeneous_classroom(2);
    const auto machine_types = e2c::exp::machine_types_of(system_);
    auto generator = e2c::workload::config_for_intensity(
        system_.eet, machine_types, param.intensity, /*duration=*/80.0, /*seed=*/1234);
    workload_ = e2c::workload::generate_workload(system_.eet, generator);

    simulation_ = std::make_unique<Simulation>(system_,
                                               e2c::sched::make_policy(param.policy));
    trace_ = std::make_unique<e2c::core::TraceRecorder>(simulation_->engine());
    simulation_->load(workload_);
    simulation_->run();
  }

  e2c::sched::SystemConfig system_;
  e2c::workload::Workload workload_;
  std::unique_ptr<Simulation> simulation_;
  std::unique_ptr<e2c::core::TraceRecorder> trace_;
};

TEST_P(PolicyInvariantTest, EveryTaskReachesExactlyOneTerminalState) {
  run_case();
  const auto& counters = simulation_->counters();
  EXPECT_GT(counters.total, 0u);
  EXPECT_EQ(counters.completed + counters.cancelled + counters.dropped, counters.total);
  const auto& state = simulation_->task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_TRUE(state.finished(i)) << "task " << state.id(i);
  }
}

TEST_P(PolicyInvariantTest, TaskRecordsAreInternallyConsistent) {
  run_case();
  const auto& state = simulation_->task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    switch (state.status[i]) {
      case TaskStatus::kCompleted:
        ASSERT_TRUE(e2c::core::time_set(state.start_time[i]));
        ASSERT_TRUE(e2c::core::time_set(state.completion_time[i]));
        ASSERT_NE(state.machine[i], e2c::workload::kNoMachine);
        EXPECT_GE(state.start_time[i], state.arrival(i));
        EXPECT_GE(state.completion_time[i], state.start_time[i]);
        // On-time means at or before the deadline.
        EXPECT_LE(state.completion_time[i], state.deadline(i) + 1e-9);
        EXPECT_FALSE(e2c::core::time_set(state.missed_time[i]));
        break;
      case TaskStatus::kCancelled:
        // Cancelled before mapping: never saw a machine.
        EXPECT_EQ(state.machine[i], e2c::workload::kNoMachine);
        EXPECT_FALSE(e2c::core::time_set(state.start_time[i]));
        ASSERT_TRUE(e2c::core::time_set(state.missed_time[i]));
        EXPECT_NEAR(state.missed_time[i], state.deadline(i), 1e-9);
        break;
      case TaskStatus::kDropped:
        // Dropped after mapping.
        EXPECT_NE(state.machine[i], e2c::workload::kNoMachine);
        ASSERT_TRUE(e2c::core::time_set(state.missed_time[i]));
        EXPECT_NEAR(state.missed_time[i], state.deadline(i), 1e-9);
        EXPECT_FALSE(e2c::core::time_set(state.completion_time[i]));
        break;
      default:
        FAIL() << "non-terminal status after run()";
    }
  }
}

TEST_P(PolicyInvariantTest, ExecutionRespectsEet) {
  run_case();
  const auto& eet = simulation_->eet();
  const auto& state = simulation_->task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (state.status[i] != TaskStatus::kCompleted) continue;
    const auto machine_type = simulation_->machine(state.machine[i]).type();
    EXPECT_NEAR(state.completion_time[i] - state.start_time[i],
                eet.eet(state.type(i), machine_type), 1e-9)
        << "task " << state.id(i);
  }
}

TEST_P(PolicyInvariantTest, MachineAccountingBounded) {
  run_case();
  const double horizon = simulation_->engine().now();
  std::size_t completions = 0;
  for (std::size_t m = 0; m < simulation_->machine_count(); ++m) {
    const auto stats = simulation_->machine(m).finalize_stats(horizon);
    EXPECT_LE(stats.busy_seconds, horizon + 1e-9);
    EXPECT_LE(stats.utilization(), 1.0 + 1e-9);
    EXPECT_GE(stats.utilization(), 0.0);
    completions += stats.tasks_completed;
  }
  EXPECT_EQ(completions, simulation_->counters().completed);
}

TEST_P(PolicyInvariantTest, EnergyWithinPowerEnvelope) {
  run_case();
  const double horizon = simulation_->engine().now();
  double idle_floor = 0.0;
  double busy_ceiling = 0.0;
  for (const auto& machine : system_.machines) {
    idle_floor += machine.power.idle_watts * horizon;
    busy_ceiling += machine.power.busy_watts * horizon;
  }
  const double energy = simulation_->total_energy_joules(horizon);
  EXPECT_GE(energy, idle_floor - 1e-6);
  EXPECT_LE(energy, busy_ceiling + 1e-6);
}

TEST_P(PolicyInvariantTest, EventOrderingIsMonotonic) {
  run_case();
  EXPECT_TRUE(trace_->is_monotonic());
  EXPECT_GT(trace_->records().size(), workload_.size());  // >= one event per task
}

TEST_P(PolicyInvariantTest, ImmediateModeNeverCancels) {
  run_case();
  const auto policy = e2c::sched::make_policy(GetParam().policy);
  if (policy->mode() != e2c::sched::PolicyMode::kImmediate) return;
  // Unbounded machine queues: every task is mapped on arrival, so the
  // "cancelled in batch queue" outcome is unreachable.
  EXPECT_EQ(simulation_->counters().cancelled, 0u);
  EXPECT_TRUE(simulation_->batch_queue_ids().empty());
}

TEST_P(PolicyInvariantTest, MetricsAgreeWithCounters) {
  run_case();
  const auto metrics = e2c::reports::compute_metrics(*simulation_);
  EXPECT_EQ(metrics.completed, simulation_->counters().completed);
  EXPECT_NEAR(metrics.completion_percent + metrics.cancelled_percent +
                  metrics.dropped_percent,
              100.0, 1e-9);
  EXPECT_EQ(metrics.type_completion_rate.size(), system_.eet.task_type_count());
}

std::string case_name(const testing::TestParamInfo<PropertyCase>& info) {
  return info.param.policy + "_" +
         e2c::workload::intensity_name(info.param.intensity) + "_" +
         (info.param.heterogeneous ? "hetero" : "homog");
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllIntensities, PolicyInvariantTest,
                         testing::ValuesIn(all_cases()), case_name);

}  // namespace
