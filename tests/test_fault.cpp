// Tests for the fault-injection subsystem: the fault model itself
// (fault/fault_model.hpp), the Failed machine state, and the simulation's
// abort/retry/requeue pipeline.
#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "machines/machine.hpp"
#include "net/comm_model.hpp"
#include "reports/report.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/error.hpp"
#include "workload/workload.hpp"

namespace {

using e2c::InputError;
using e2c::core::Engine;
using e2c::fault::FaultConfig;
using e2c::fault::FaultInjector;
using e2c::fault::FaultMode;
using e2c::fault::FaultTraceEntry;
using e2c::fault::RetryPolicy;
using e2c::hetero::EetMatrix;
using e2c::hetero::MachineTypeSpec;
using e2c::machines::Machine;
using e2c::machines::MachineState;
using e2c::sched::Simulation;
using e2c::sched::SystemConfig;
using e2c::workload::TaskDef;
using e2c::workload::TaskStatus;
using e2c::workload::Workload;

TaskDef make_task(std::uint64_t id, std::size_t type, double arrival, double deadline) {
  TaskDef task;
  task.id = id;
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

SystemConfig two_machine_system(std::size_t queue_capacity = 2) {
  EetMatrix eet({"T1", "T2"}, {"m0", "m1"}, {{4.0, 6.0}, {5.0, 2.0}});
  return e2c::sched::make_default_system(std::move(eet), queue_capacity);
}

FaultConfig trace_faults(std::vector<FaultTraceEntry> entries) {
  FaultConfig faults;
  faults.enabled = true;
  faults.mode = FaultMode::kTrace;
  faults.trace = std::move(entries);
  return faults;
}

// ---- machine state machine ------------------------------------------------

TEST(MachineFailure, FailAbortsRunningAndFlushesQueue) {
  Engine engine;
  Machine machine(engine, 0, "m0", 0, MachineTypeSpec{"test", 10.0, 110.0}, 0);
  e2c::workload::TaskStateSoA state;
  state.adopt({make_task(0, 0, 0.0, 1e9), make_task(1, 0, 0.0, 1e9)});
  machine.set_task_state(&state);
  machine.enqueue(0, 10.0);
  machine.enqueue(1, 10.0);

  std::vector<std::size_t> evicted;
  engine.schedule_at(3.0, e2c::core::EventPriority::kControl, "fail",
                     [&] { evicted = machine.fail(engine.now()); });
  engine.run();

  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], 0u);  // running task first
  EXPECT_EQ(evicted[1], 1u);  // then queue order
  EXPECT_EQ(machine.state(), MachineState::kFailed);
  EXPECT_TRUE(machine.failed());
  EXPECT_FALSE(machine.online());
  EXPECT_FALSE(machine.busy());
  EXPECT_EQ(machine.queue_length(), 0u);
  // 3 s of partial execution are charged to busy time.
  EXPECT_DOUBLE_EQ(machine.finalize_stats(3.0).busy_seconds, 3.0);
  EXPECT_EQ(machine.finalize_stats(3.0).tasks_aborted, 2u);
  EXPECT_EQ(machine.finalize_stats(3.0).failures, 1u);
}

TEST(MachineFailure, SetOnlineIsNoOpWhileFailed) {
  Engine engine;
  Machine machine(engine, 0, "m0", 0, MachineTypeSpec{"test", 10.0, 110.0}, 0);
  (void)machine.fail(0.0);
  machine.set_online(true, 1.0);
  EXPECT_TRUE(machine.failed());
  machine.repair(2.0);
  EXPECT_TRUE(machine.online());
  EXPECT_TRUE(machine.has_queue_space());
}

TEST(MachineFailure, AvailabilityReflectsDowntime) {
  Engine engine;
  Machine machine(engine, 0, "m0", 0, MachineTypeSpec{"test", 10.0, 110.0}, 0);
  (void)machine.fail(2.0);
  machine.repair(4.0);
  EXPECT_DOUBLE_EQ(machine.failed_seconds(10.0), 2.0);
  EXPECT_DOUBLE_EQ(machine.availability(10.0), 0.8);
  // An open failure span is clamped to the horizon.
  (void)machine.fail(8.0);
  EXPECT_DOUBLE_EQ(machine.failed_seconds(10.0), 4.0);
  EXPECT_DOUBLE_EQ(machine.availability(10.0), 0.6);
  EXPECT_EQ(machine.failure_spans().size(), 2u);
}

// ---- trace loading --------------------------------------------------------

TEST(FaultTrace, ParsesCsv) {
  const auto trace = e2c::fault::fault_trace_from_csv_text(
      "machine,fail_time,repair_time\n1,10.5,12\n0,3,4.5\n");
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].machine, 1u);
  EXPECT_DOUBLE_EQ(trace[0].fail_time, 10.5);
  EXPECT_DOUBLE_EQ(trace[1].repair_time, 4.5);
}

TEST(FaultTrace, ErrorsCarryLineNumbers) {
  try {
    (void)e2c::fault::fault_trace_from_csv_text(
        "machine,fail_time,repair_time\n0,1,2\nx,3,4\n");
    FAIL() << "expected InputError";
  } catch (const InputError& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(FaultTrace, RejectsRepairBeforeFail) {
  EXPECT_THROW((void)e2c::fault::fault_trace_from_csv_text(
                   "machine,fail_time,repair_time\n0,5,5\n"),
               InputError);
}

TEST(FaultTrace, SimulationRejectsOutOfRangeMachine) {
  SystemConfig system = two_machine_system();
  system.faults = trace_faults({{7, 1.0, 2.0}});
  EXPECT_THROW(Simulation(system, e2c::sched::make_policy("MECT")), InputError);
}

// ---- injector -------------------------------------------------------------

TEST(FaultInjector, StochasticIsDeterministicUnderSeed) {
  FaultConfig config;
  config.enabled = true;
  config.mtbf = 50.0;
  config.mttr = 5.0;
  config.seed = 7;
  FaultInjector a(config, 3);
  FaultInjector b(config, 3);
  for (std::size_t m = 0; m < 3; ++m) {
    double from = 0.0;
    for (int i = 0; i < 10; ++i) {
      const auto sa = a.next(m, from);
      const auto sb = b.next(m, from);
      ASSERT_TRUE(sa && sb);
      EXPECT_DOUBLE_EQ(sa->fail_time, sb->fail_time);
      EXPECT_DOUBLE_EQ(sa->repair_time, sb->repair_time);
      EXPECT_GT(sa->fail_time, from);
      EXPECT_GT(sa->repair_time, sa->fail_time);
      from = sa->repair_time;
    }
  }
}

TEST(FaultInjector, MachinesDrawIndependentStreams) {
  FaultConfig config;
  config.enabled = true;
  config.mtbf = 50.0;
  config.mttr = 5.0;
  FaultInjector injector(config, 2);
  const auto s0 = injector.next(0, 0.0);
  const auto s1 = injector.next(1, 0.0);
  ASSERT_TRUE(s0 && s1);
  EXPECT_NE(s0->fail_time, s1->fail_time);
}

TEST(FaultInjector, TraceModeExhausts) {
  FaultConfig config = trace_faults({{0, 1.0, 2.0}, {0, 5.0, 6.0}});
  FaultInjector injector(config, 1);
  const auto first = injector.next(0, 0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->fail_time, 1.0);
  const auto second = injector.next(0, 2.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->fail_time, 5.0);
  EXPECT_FALSE(injector.next(0, 6.0).has_value());
}

// ---- retry policy ---------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsExponentially) {
  RetryPolicy retry;
  retry.backoff_base = 1.5;
  retry.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(retry.delay(1), 1.5);
  EXPECT_DOUBLE_EQ(retry.delay(2), 3.0);
  EXPECT_DOUBLE_EQ(retry.delay(3), 6.0);
}

TEST(RetryPolicyTest, BackoffIsCappedAtMaxBackoff) {
  RetryPolicy retry;
  retry.backoff_base = 1.0;
  retry.backoff_factor = 2.0;
  retry.max_backoff = 60.0;
  // 2^9 = 512 > 60; the cap kicks in.
  EXPECT_DOUBLE_EQ(retry.delay(10), 60.0);
  // Far past where the uncapped exponential overflows to +inf.
  EXPECT_DOUBLE_EQ(retry.delay(5000), 60.0);
  EXPECT_TRUE(std::isfinite(retry.delay(5000)));
  // Below the cap the exponential is untouched.
  EXPECT_DOUBLE_EQ(retry.delay(3), 4.0);
}

// ---- config validation ----------------------------------------------------

TEST(FaultConfigValidation, RejectsBadValues) {
  FaultConfig config;
  config.enabled = true;
  config.mtbf = -1.0;
  EXPECT_THROW(config.validate(2), InputError);
  config.mtbf = 100.0;
  config.retry.max_backoff = 0.0;
  EXPECT_THROW(config.validate(2), InputError);
}

TEST(FaultConfigValidation, RejectsBadRecoveryValues) {
  FaultConfig config;
  config.enabled = true;
  config.recovery.strategy = e2c::fault::RecoveryStrategy::kCheckpoint;
  config.recovery.checkpoint_cost = -0.5;
  EXPECT_THROW(config.validate(2), InputError);
  config.recovery.checkpoint_cost = 0.5;
  config.recovery.restart_cost = -1.0;
  EXPECT_THROW(config.validate(2), InputError);
  config.recovery.restart_cost = 0.5;
  config.validate(2);  // sane checkpoint config passes

  config.recovery.strategy = e2c::fault::RecoveryStrategy::kReplicate;
  config.recovery.replicas = 0;
  EXPECT_THROW(config.validate(2), InputError);
  config.recovery.replicas = 3;  // only 2 machines -> cannot be distinct
  EXPECT_THROW(config.validate(2), InputError);
  config.recovery.replicas = 2;
  config.validate(2);
}

TEST(FaultConfigValidation, AutoCheckpointIntervalNeedsStochasticMtbf) {
  FaultConfig config = trace_faults({{0, 1.0, 2.0}});
  config.recovery.strategy = e2c::fault::RecoveryStrategy::kCheckpoint;
  config.recovery.checkpoint_interval = 0.0;  // auto τ needs an MTBF
  EXPECT_THROW(config.validate(2), InputError);
  config.recovery.checkpoint_interval = 2.0;  // fixed τ is fine with a trace
  config.validate(2);
}

TEST(FaultConfigValidation, TraceRejectsNegativeFailTime) {
  FaultConfig config = trace_faults({{0, -1.0, 2.0}});
  try {
    config.validate(2);
    FAIL() << "expected InputError";
  } catch (const InputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("fail_time must be >= 0"), std::string::npos) << what;
    EXPECT_NE(what.find("trace entry #0"), std::string::npos) << what;
  }
}

TEST(FaultConfigValidation, TraceRejectsRepairAtOrBeforeFail) {
  EXPECT_THROW(trace_faults({{0, 5.0, 5.0}}).validate(2), InputError);
  EXPECT_THROW(trace_faults({{0, 5.0, 4.0}}).validate(2), InputError);
  trace_faults({{0, 5.0, 5.5}}).validate(2);
}

TEST(FaultConfigValidation, TraceRejectsOverlappingSpansOnOneMachine) {
  // Machine 0's second span starts while the first is still down; the
  // injector would silently skip it, so validate rejects the trace.
  FaultConfig config = trace_faults({{0, 1.0, 10.0}, {1, 2.0, 3.0}, {0, 4.0, 12.0}});
  try {
    config.validate(2);
    FAIL() << "expected InputError";
  } catch (const InputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("overlapping spans on machine 0"), std::string::npos) << what;
    EXPECT_NE(what.find("trace entry #2"), std::string::npos) << what;
  }
}

TEST(FaultConfigValidation, TraceAllowsBackToBackSpans) {
  // fail == previous repair is fine: the machine crashes again the instant
  // it comes back. Spans on different machines never conflict.
  trace_faults({{0, 1.0, 2.0}, {0, 2.0, 3.0}, {1, 1.5, 2.5}}).validate(2);
}

TEST(FaultConfigValidation, TraceErrorsCarryCsvLineLocators) {
  // Entries loaded from CSV report the defining file line, not an index.
  FaultConfig config = trace_faults(e2c::fault::fault_trace_from_csv_text(
      "machine,fail_time,repair_time\n0,1,10\n0,4,12\n"));
  try {
    config.validate(2);
    FAIL() << "expected InputError";
  } catch (const InputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

TEST(FaultConfigValidation, IoChannelNeedsCheckpointStrategy) {
  FaultConfig config;
  config.enabled = true;
  config.io.enabled = true;
  config.io.bandwidth = 100.0;
  EXPECT_THROW(config.validate(2), InputError);  // strategy is resubmit
  config.recovery.strategy = e2c::fault::RecoveryStrategy::kCheckpoint;
  config.validate(2);
  config.io.bandwidth = 0.0;
  EXPECT_THROW(config.validate(2), InputError);
  config.io.bandwidth = 100.0;
  // Zero-cost checkpoints with no explicit byte size would make every write
  // a zero-byte transfer.
  config.recovery.checkpoint_cost = 0.0;
  config.recovery.checkpoint_interval = 5.0;
  EXPECT_THROW(config.validate(2), InputError);
  config.io.checkpoint_bytes = 64.0;
  config.validate(2);
  config.io.strategy = e2c::fault::IoStrategy::kCooperative;
  config.io.max_writers = 0;
  EXPECT_THROW(config.validate(2), InputError);
}

TEST(IoStrategyParse, NamesRoundTripAndTyposGetSuggestions) {
  using e2c::fault::IoStrategy;
  using e2c::fault::parse_io_strategy;
  EXPECT_EQ(parse_io_strategy("selfish"), IoStrategy::kSelfish);
  EXPECT_EQ(parse_io_strategy("COOPERATIVE"), IoStrategy::kCooperative);
  EXPECT_STREQ(e2c::fault::io_strategy_name(IoStrategy::kSelfish), "selfish");
  EXPECT_STREQ(e2c::fault::io_strategy_name(IoStrategy::kCooperative), "cooperative");
  try {
    (void)parse_io_strategy("cooperativ");
    FAIL() << "expected InputError";
  } catch (const InputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("did you mean 'cooperative'"), std::string::npos) << what;
    EXPECT_NE(what.find("selfish | cooperative"), std::string::npos) << what;
  }
}

TEST(RecoveryStrategyParse, NamesRoundTripAndTyposGetSuggestions) {
  using e2c::fault::parse_recovery_strategy;
  using e2c::fault::RecoveryStrategy;
  EXPECT_EQ(parse_recovery_strategy("checkpoint"), RecoveryStrategy::kCheckpoint);
  EXPECT_EQ(parse_recovery_strategy("REPLICATE"), RecoveryStrategy::kReplicate);
  try {
    (void)parse_recovery_strategy("checkpont");
    FAIL() << "expected InputError";
  } catch (const InputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("did you mean 'checkpoint'"), std::string::npos) << what;
    EXPECT_NE(what.find("resubmit"), std::string::npos) << what;
  }
}

TEST(RecoveryStrategyParse, YoungDalyInterval) {
  // √(2·C·MTBF): C = 2, MTBF = 100 -> √400 = 20.
  EXPECT_DOUBLE_EQ(e2c::fault::young_daly_interval(2.0, 100.0), 20.0);
  EXPECT_THROW((void)e2c::fault::young_daly_interval(0.0, 100.0), InputError);
  EXPECT_THROW((void)e2c::fault::young_daly_interval(1.0, 0.0), InputError);
}

// ---- simulation integration ----------------------------------------------

TEST(FaultSimulation, AbortedTaskRetriesAndCompletes) {
  // T1 starts on m0 at 0, m0 crashes at 2, repairs at 100. The task backs
  // off 1 s and remaps (to m1, the only online machine) and completes.
  SystemConfig system = two_machine_system();
  system.faults = trace_faults({{0, 2.0, 100.0}});
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kCompleted);
  EXPECT_EQ(state.retries[0], 1u);
  EXPECT_EQ(state.machine[0], 1u);
  // crash at 2 + backoff 1 -> requeue at 3 -> 6 s (T1 on m1) -> done at 9.
  EXPECT_DOUBLE_EQ(state.completion_time[0], 9.0);
  EXPECT_EQ(simulation.counters().requeued, 1u);
  EXPECT_EQ(simulation.counters().failed, 0u);
  EXPECT_EQ(simulation.counters().completed, 1u);
}

TEST(FaultSimulation, RetryExhaustionMarksFailed) {
  SystemConfig system = two_machine_system();
  // Both machines crash whenever the task lands; no retries allowed.
  system.faults = trace_faults({{0, 2.0, 1000.0}});
  system.faults.retry.max_retries = 0;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kFailed);
  EXPECT_EQ(state.retries[0], 0u);
  EXPECT_EQ(state.machine[0], e2c::workload::kNoMachine);
  EXPECT_DOUBLE_EQ(state.missed_time[0], 2.0);
  EXPECT_EQ(simulation.counters().failed, 1u);
  EXPECT_EQ(simulation.counters().requeued, 0u);
  EXPECT_TRUE(simulation.finished());
  // The missed panel includes fault-failed tasks.
  ASSERT_EQ(simulation.missed_tasks().size(), 1u);
  EXPECT_EQ(state.id(simulation.missed_tasks()[0]), 0u);
}

TEST(FaultSimulation, RequeueOrderIsRunningFirstThenQueue) {
  // Three T1 tasks pile onto m0 (MECT prefers it: eet 4 vs 6). m0 crashes at
  // 1 with both machines' trace keeping m1 alive; after backoff all three
  // re-enter the batch queue in eviction order: running task 0, then queued
  // 1, 2 — and are remapped in that order.
  SystemConfig system = two_machine_system();
  system.faults = trace_faults({{0, 1.0, 1000.0}});
  Simulation simulation(system, e2c::sched::make_policy("FCFS"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9), make_task(1, 0, 0.0, 1e9),
                            make_task(2, 0, 0.0, 1e9)}));
  simulation.run();
  ASSERT_EQ(simulation.counters().completed, 3u);
  std::vector<double> starts;
  const auto& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_EQ(state.status[i], TaskStatus::kCompleted);
    starts.push_back(state.start_time[i]);
  }
  // Task 1 rode out the crash on m1 (started at 0); the evicted pair lines
  // up behind it in eviction order: running task 0, then queued task 2.
  EXPECT_DOUBLE_EQ(starts[1], 0.0);
  EXPECT_DOUBLE_EQ(starts[0], 6.0);
  EXPECT_DOUBLE_EQ(starts[2], 12.0);
  EXPECT_EQ(state.retries[0], 1u);
  EXPECT_EQ(state.retries[2], 1u);
}

TEST(FaultSimulation, DeadlineDuringRetryWaitFails) {
  // Crash at 2; backoff 10 s; deadline at 5 fires while the task waits.
  SystemConfig system = two_machine_system();
  system.faults = trace_faults({{0, 2.0, 1000.0}});
  system.faults.retry.backoff_base = 10.0;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 5.0)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kFailed);
  EXPECT_DOUBLE_EQ(state.missed_time[0], 5.0);
  EXPECT_EQ(simulation.counters().failed, 1u);
  EXPECT_EQ(simulation.counters().requeued, 1u);
  EXPECT_TRUE(simulation.finished());
}

TEST(FaultSimulation, InFlightTransferToFailedMachineIsRefunded) {
  // With a comm model every mapping transfers first. m0 crashes mid-transfer;
  // the payload is cancelled, the reservation refunded, and the task retries
  // to completion elsewhere.
  SystemConfig system = two_machine_system();
  system.comm = e2c::net::CommModel::uniform(
      system.eet.task_type_count(), system.eet.machine_type_count(), 100.0,
      e2c::net::LinkSpec{0.0, 100.0});  // 1 s transfer
  system.faults = trace_faults({{0, 0.5, 1000.0}});
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kCompleted);
  EXPECT_EQ(state.retries[0], 1u);
  EXPECT_EQ(state.machine[0], 1u);
  EXPECT_EQ(simulation.in_flight_count(0), 0u);
  EXPECT_EQ(simulation.in_flight_count(1), 0u);
}

TEST(FaultSimulation, CountersAddUpWithFaults) {
  SystemConfig system = two_machine_system(1);
  system.faults.enabled = true;
  system.faults.mtbf = 20.0;
  system.faults.mttr = 4.0;
  system.faults.seed = 11;
  Simulation simulation(system, e2c::sched::make_policy("MM"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 30; ++i) {
    tasks.push_back(make_task(i, i % 2, static_cast<double>(i) * 0.4,
                              static_cast<double>(i) * 0.4 + 15.0));
  }
  simulation.load(Workload(std::move(tasks)));
  simulation.run();
  const auto& counters = simulation.counters();
  EXPECT_EQ(counters.completed + counters.cancelled + counters.dropped + counters.failed,
            counters.total);
  EXPECT_TRUE(simulation.finished());
}

TEST(FaultSimulation, StochasticRunIsBitIdenticalUnderSeed) {
  const auto run_once = [] {
    SystemConfig system = two_machine_system();
    system.faults.enabled = true;
    system.faults.mtbf = 15.0;
    system.faults.mttr = 3.0;
    system.faults.seed = 99;
    Simulation simulation(system, e2c::sched::make_policy("MECT"));
    std::vector<TaskDef> tasks;
    for (std::uint64_t i = 0; i < 40; ++i) {
      tasks.push_back(make_task(i, i % 2, static_cast<double>(i) * 0.5,
                                static_cast<double>(i) * 0.5 + 25.0));
    }
    simulation.load(Workload(std::move(tasks)));
    simulation.run();
    return e2c::reports::task_report(simulation);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FaultSimulation, EmptyTraceMatchesDisabledFaults) {
  // An enabled injector whose trace holds no spans must be indistinguishable
  // from faults switched off entirely.
  const auto run_once = [](const FaultConfig& faults) {
    SystemConfig system = two_machine_system();
    system.faults = faults;
    Simulation simulation(system, e2c::sched::make_policy("MM"));
    std::vector<TaskDef> tasks;
    for (std::uint64_t i = 0; i < 20; ++i) {
      tasks.push_back(make_task(i, i % 2, static_cast<double>(i) * 0.7,
                                static_cast<double>(i) * 0.7 + 12.0));
    }
    simulation.load(Workload(std::move(tasks)));
    simulation.run();
    return e2c::reports::task_report(simulation);
  };
  const FaultConfig disabled;
  const FaultConfig empty_trace = trace_faults({});
  EXPECT_EQ(run_once(disabled), run_once(empty_trace));
  const auto rows = run_once(empty_trace);
  EXPECT_GT(rows.size(), 1u);
}

}  // namespace
