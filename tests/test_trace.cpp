// Unit tests for the event trace recorder (core/trace.hpp).
#include "core/trace.hpp"

#include <gtest/gtest.h>

namespace {

using e2c::core::Engine;
using e2c::core::EventPriority;
using e2c::core::TraceRecorder;

TEST(Trace, RecordsAllEvents) {
  Engine engine;
  TraceRecorder trace(engine);
  (void)engine.schedule_at(1.0, EventPriority::kArrival, "a", {});
  (void)engine.schedule_at(2.0, EventPriority::kCompletion, "b", {});
  engine.run();
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_EQ(trace.records()[0].label, "a");
  EXPECT_EQ(trace.records()[1].label, "b");
  EXPECT_DOUBLE_EQ(trace.records()[1].time, 2.0);
}

TEST(Trace, MonotonicOnOrderedRun) {
  Engine engine;
  TraceRecorder trace(engine);
  (void)engine.schedule_at(2.0, EventPriority::kArrival, "later", {});
  (void)engine.schedule_at(2.0, EventPriority::kCompletion, "first", {});
  (void)engine.schedule_at(1.0, EventPriority::kSchedule, "earliest", {});
  engine.run();
  EXPECT_TRUE(trace.is_monotonic());
}

TEST(Trace, CsvRowsHaveHeaderAndData) {
  Engine engine;
  TraceRecorder trace(engine);
  (void)engine.schedule_at(1.5, EventPriority::kArrival, "task", {});
  engine.run();
  const auto rows = trace.to_csv_rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "time");
  EXPECT_EQ(rows[1][0], "1.5000");
  EXPECT_EQ(rows[1][1], "arrival");
  EXPECT_EQ(rows[1][2], "task");
}

TEST(Trace, ClearForgets) {
  Engine engine;
  TraceRecorder trace(engine);
  (void)engine.schedule_at(1.0, EventPriority::kArrival, "x", {});
  engine.run();
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

TEST(Trace, DetachesOnDestruction) {
  Engine engine;
  {
    TraceRecorder trace(engine);
  }
  // Recorder destroyed; engine must not call a dangling observer.
  (void)engine.schedule_at(1.0, EventPriority::kArrival, "x", {});
  engine.run();
  SUCCEED();
}

}  // namespace
