// Unit tests for the rendering components: ASCII frames, bar charts,
// SVG Gantt and the HTML report (src/viz).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sched/registry.hpp"
#include "util/error.hpp"
#include "viz/ascii_view.hpp"
#include "viz/bar_chart.hpp"
#include "viz/bar_chart_svg.hpp"
#include "viz/gantt_svg.hpp"
#include "viz/html_report.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::sched::Simulation;
using e2c::workload::TaskDef;
using e2c::workload::Workload;

std::unique_ptr<Simulation> finished_simulation() {
  EetMatrix eet({"T1", "T2"}, {"m0", "m1"}, {{4.0, 6.0}, {5.0, 2.0}});
  auto simulation = std::make_unique<Simulation>(
      e2c::sched::make_default_system(std::move(eet)), e2c::sched::make_policy("MECT"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 6; ++i) {
    TaskDef task;
    task.id = i;
    task.type = i % 2;
    task.arrival = static_cast<double>(i) * 0.5;
    task.deadline = i == 5 ? 3.0 : 100.0;  // one task misses
    tasks.push_back(task);
  }
  simulation->load(Workload(std::move(tasks)));
  simulation->run();
  return simulation;
}

TEST(AsciiView, FrameShowsHeaderAndMachines) {
  const auto simulation = finished_simulation();
  e2c::viz::AsciiViewOptions options;
  options.use_color = false;
  const std::string frame = e2c::viz::render_frame(*simulation, options);
  EXPECT_NE(frame.find("policy=MECT"), std::string::npos);
  EXPECT_NE(frame.find("m0"), std::string::npos);
  EXPECT_NE(frame.find("m1"), std::string::npos);
  EXPECT_NE(frame.find("completed="), std::string::npos);
  EXPECT_EQ(frame.find("\033["), std::string::npos);  // no ANSI without color
}

TEST(AsciiView, ColorModeEmitsAnsi) {
  EetMatrix eet({"T1"}, {"m0"}, {{5.0}});
  Simulation simulation(e2c::sched::make_default_system(std::move(eet)),
                        e2c::sched::make_policy("FCFS"));
  TaskDef task;
  task.id = 0;
  task.type = 0;
  task.arrival = 0.0;
  task.deadline = 100.0;
  simulation.load(Workload({task}));
  (void)simulation.step();  // arrival
  (void)simulation.step();  // scheduler -> running
  e2c::viz::AsciiViewOptions options;
  options.use_color = true;
  const std::string frame = e2c::viz::render_frame(simulation, options);
  EXPECT_NE(frame.find("\033["), std::string::npos);
  EXPECT_NE(frame.find("RUN"), std::string::npos);
}

TEST(AsciiView, ClearScreenPrefix) {
  const auto simulation = finished_simulation();
  e2c::viz::AsciiViewOptions options;
  options.clear_screen = true;
  const std::string frame = e2c::viz::render_frame(*simulation, options);
  EXPECT_EQ(frame.rfind("\033[H\033[2J", 0), 0u);
}

TEST(AsciiView, MissedPanelListsMissedTask) {
  const auto simulation = finished_simulation();
  const std::string panel = e2c::viz::render_missed_panel(*simulation);
  EXPECT_NE(panel.find("Missed Tasks"), std::string::npos);
  EXPECT_NE(panel.find("5"), std::string::npos);  // the missing task's id
}

TEST(BarChart, RendersGroupsAndSeries) {
  e2c::viz::BarChart chart;
  chart.title = "Completion %";
  chart.groups = {"low", "high"};
  chart.series = {{"FCFS", {90.0, 40.0}}, {"MECT", {95.0, 60.0}}};
  const std::string out = e2c::viz::render_bar_chart(chart);
  EXPECT_NE(out.find("Completion %"), std::string::npos);
  EXPECT_NE(out.find("low:"), std::string::npos);
  EXPECT_NE(out.find("FCFS"), std::string::npos);
  EXPECT_NE(out.find("95.0%"), std::string::npos);
}

TEST(BarChart, BarLengthProportional) {
  e2c::viz::BarChart chart;
  chart.groups = {"g"};
  chart.series = {{"full", {100.0}}, {"half", {50.0}}, {"zero", {0.0}}};
  chart.width = 10;
  const std::string out = e2c::viz::render_bar_chart(chart);
  EXPECT_NE(out.find("|##########|"), std::string::npos);
  EXPECT_NE(out.find("|#####     |"), std::string::npos);
  EXPECT_NE(out.find("|          |"), std::string::npos);
}

TEST(BarChart, ValuesClampedToAxis) {
  e2c::viz::BarChart chart;
  chart.groups = {"g"};
  chart.series = {{"over", {150.0}}};
  chart.width = 10;
  const std::string out = e2c::viz::render_bar_chart(chart);
  EXPECT_NE(out.find("##########"), std::string::npos);  // capped, no overflow
}

TEST(BarChart, RejectsMismatchedSeries) {
  e2c::viz::BarChart chart;
  chart.groups = {"a", "b"};
  chart.series = {{"x", {1.0}}};
  EXPECT_THROW((void)e2c::viz::render_bar_chart(chart), e2c::InputError);
  chart.series = {{"x", {1.0, 2.0}}};
  chart.max_value = 0.0;
  EXPECT_THROW((void)e2c::viz::render_bar_chart(chart), e2c::InputError);
}

TEST(BarChartSvg, WellFormedWithLegendAndBars) {
  e2c::viz::BarChart chart;
  chart.title = "completion %";
  chart.groups = {"low", "medium", "high"};
  chart.series = {{"FCFS", {95.0, 80.0, 40.0}}, {"MECT", {100.0, 95.0, 70.0}}};
  const std::string svg = e2c::viz::render_bar_chart_svg(chart);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("FCFS"), std::string::npos);   // legend
  EXPECT_NE(svg.find("medium"), std::string::npos); // group label
  // 2 series x 3 groups = 6 bars plus the 2 legend swatches.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, 8u);
}

TEST(BarChartSvg, ValidatesInput) {
  e2c::viz::BarChart chart;
  chart.groups = {"a"};
  chart.series = {{"x", {1.0, 2.0}}};  // mismatch
  EXPECT_THROW((void)e2c::viz::render_bar_chart_svg(chart), e2c::InputError);
  chart.series.clear();
  EXPECT_THROW((void)e2c::viz::render_bar_chart_svg(chart), e2c::InputError);
}

TEST(BarChartSvg, SaveWritesFile) {
  e2c::viz::BarChart chart;
  chart.groups = {"g"};
  chart.series = {{"s", {42.0}}};
  const std::string path = testing::TempDir() + "/e2c_barchart_test.svg";
  e2c::viz::save_bar_chart_svg(chart, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(GanttSvg, WellFormedAndContainsLanes) {
  const auto simulation = finished_simulation();
  const std::string svg = e2c::viz::render_gantt_svg(*simulation);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("m0"), std::string::npos);
  EXPECT_NE(svg.find("m1"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);     // executed spans
  EXPECT_NE(svg.find("MECT"), std::string::npos);      // title
}

TEST(GanttSvg, SaveWritesFile) {
  const auto simulation = finished_simulation();
  const std::string path = testing::TempDir() + "/e2c_gantt_test.svg";
  e2c::viz::save_gantt_svg(*simulation, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
  EXPECT_THROW(e2c::viz::save_gantt_svg(*simulation, "/nonexistent/x.svg"), e2c::IoError);
}

TEST(HtmlReport, ContainsAllSections) {
  const auto simulation = finished_simulation();
  const std::string html = e2c::viz::render_html_report(*simulation);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("Summary Report"), std::string::npos);
  EXPECT_NE(html.find("Machine Report"), std::string::npos);
  EXPECT_NE(html.find("Missed Tasks"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);  // embedded Gantt
}

TEST(HtmlReport, SaveWritesFile) {
  const auto simulation = finished_simulation();
  const std::string path = testing::TempDir() + "/e2c_html_test.html";
  e2c::viz::save_html_report(*simulation, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

}  // namespace
