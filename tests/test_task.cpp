// Unit tests for the task model (workload/task.hpp) and the SoA per-run
// state table (workload/task_state.hpp).
#include "workload/task.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "workload/task_state.hpp"

namespace {

using e2c::workload::TaskDef;
using e2c::workload::TaskStateSoA;
using e2c::workload::TaskStatus;

TEST(TaskStatus, Names) {
  EXPECT_STREQ(e2c::workload::task_status_name(TaskStatus::kCompleted), "completed");
  EXPECT_STREQ(e2c::workload::task_status_name(TaskStatus::kCancelled), "cancelled");
  EXPECT_STREQ(e2c::workload::task_status_name(TaskStatus::kDropped), "dropped");
  EXPECT_STREQ(e2c::workload::task_status_name(TaskStatus::kInBatchQueue), "batch-queue");
}

TEST(TaskStatus, TerminalClassification) {
  EXPECT_TRUE(e2c::workload::is_terminal(TaskStatus::kCompleted));
  EXPECT_TRUE(e2c::workload::is_terminal(TaskStatus::kCancelled));
  EXPECT_TRUE(e2c::workload::is_terminal(TaskStatus::kDropped));
  EXPECT_FALSE(e2c::workload::is_terminal(TaskStatus::kPending));
  EXPECT_FALSE(e2c::workload::is_terminal(TaskStatus::kRunning));
  EXPECT_FALSE(e2c::workload::is_terminal(TaskStatus::kInMachineQueue));
}

TEST(TaskDef, DefaultDeadlineIsInfinite) {
  TaskDef task;
  EXPECT_EQ(task.deadline, e2c::core::kTimeInfinity);
}

std::vector<TaskDef> two_tasks() {
  TaskDef a;
  a.id = 0;
  a.arrival = 2.0;
  TaskDef b;
  b.id = 1;
  b.arrival = 3.0;
  return {a, b};
}

TEST(TaskState, ColumnsStartAtSentinels) {
  TaskStateSoA state;
  state.adopt(two_tasks());
  ASSERT_EQ(state.size(), 2u);
  EXPECT_EQ(state.status[0], TaskStatus::kPending);
  EXPECT_EQ(state.machine[0], e2c::workload::kNoMachine);
  EXPECT_FALSE(e2c::core::time_set(state.start_time[0]));
  EXPECT_FALSE(e2c::core::time_set(state.completion_time[0]));
  EXPECT_FALSE(e2c::core::time_set(state.missed_time[0]));
  EXPECT_FALSE(e2c::core::time_set(state.response_time(0)));
  EXPECT_FALSE(e2c::core::time_set(state.wait_time(0)));
  EXPECT_FALSE(state.finished(0));
  EXPECT_FALSE(state.completed(0));
}

TEST(TaskState, DerivedTimesAfterExecution) {
  TaskStateSoA state;
  state.adopt(two_tasks());
  state.start_time[0] = 5.0;
  state.completion_time[0] = 9.0;
  state.status[0] = TaskStatus::kCompleted;
  EXPECT_DOUBLE_EQ(state.wait_time(0), 3.0);      // 5 - arrival 2
  EXPECT_DOUBLE_EQ(state.response_time(0), 7.0);  // 9 - arrival 2
  EXPECT_TRUE(state.finished(0));
  EXPECT_TRUE(state.completed(0));
  // Row 1 untouched.
  EXPECT_FALSE(e2c::core::time_set(state.wait_time(1)));
}

TEST(TaskState, BindAliasesWithoutCopy) {
  const std::vector<TaskDef> trace = two_tasks();
  TaskStateSoA state;
  state.bind(trace);
  ASSERT_EQ(state.size(), 2u);
  EXPECT_EQ(state.defs.data(), trace.data());  // aliased, not copied
  EXPECT_EQ(state.id(1), 1u);
  EXPECT_DOUBLE_EQ(state.arrival(1), 3.0);
}

TEST(TaskState, ResetClearsMutationsAndLazyColumns) {
  TaskStateSoA state;
  state.adopt(two_tasks());
  state.enable_replica_column();
  state.enable_checkpoint_column();
  EXPECT_TRUE(state.has_replica_column());
  EXPECT_TRUE(state.has_checkpoint_column());
  state.status[1] = TaskStatus::kCompleted;
  state.useful_seconds[1] = 4.0;
  state.replica_of[1] = 0;
  state.checkpoint_times[1].push_back(1.5);

  state.reset();
  EXPECT_EQ(state.status[1], TaskStatus::kPending);
  EXPECT_DOUBLE_EQ(state.useful_seconds[1], 0.0);
  EXPECT_FALSE(state.has_replica_column());
  EXPECT_FALSE(state.has_checkpoint_column());
}

TEST(TaskState, LazyColumnsSizedOnEnable) {
  TaskStateSoA state;
  state.adopt(two_tasks());
  EXPECT_FALSE(state.has_replica_column());
  state.enable_replica_column();
  ASSERT_EQ(state.replica_of.size(), 2u);
  EXPECT_EQ(state.replica_of[0], e2c::workload::kNoTaskId);
  state.enable_checkpoint_column();
  ASSERT_EQ(state.checkpoint_times.size(), 2u);
  EXPECT_TRUE(state.checkpoint_times[0].empty());
}

}  // namespace
