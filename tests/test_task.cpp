// Unit tests for the task model (workload/task.hpp).
#include "workload/task.hpp"

#include <gtest/gtest.h>

namespace {

using e2c::workload::Task;
using e2c::workload::TaskStatus;

TEST(TaskStatus, Names) {
  EXPECT_STREQ(e2c::workload::task_status_name(TaskStatus::kCompleted), "completed");
  EXPECT_STREQ(e2c::workload::task_status_name(TaskStatus::kCancelled), "cancelled");
  EXPECT_STREQ(e2c::workload::task_status_name(TaskStatus::kDropped), "dropped");
  EXPECT_STREQ(e2c::workload::task_status_name(TaskStatus::kInBatchQueue), "batch-queue");
}

TEST(TaskStatus, TerminalClassification) {
  EXPECT_TRUE(e2c::workload::is_terminal(TaskStatus::kCompleted));
  EXPECT_TRUE(e2c::workload::is_terminal(TaskStatus::kCancelled));
  EXPECT_TRUE(e2c::workload::is_terminal(TaskStatus::kDropped));
  EXPECT_FALSE(e2c::workload::is_terminal(TaskStatus::kPending));
  EXPECT_FALSE(e2c::workload::is_terminal(TaskStatus::kRunning));
  EXPECT_FALSE(e2c::workload::is_terminal(TaskStatus::kInMachineQueue));
}

TEST(Task, SlackComputation) {
  Task task;
  task.deadline = 10.0;
  EXPECT_DOUBLE_EQ(task.slack(4.0), 6.0);
  EXPECT_LT(task.slack(12.0), 0.0);
}

TEST(Task, DerivedTimesEmptyUntilSet) {
  Task task;
  EXPECT_FALSE(task.response_time().has_value());
  EXPECT_FALSE(task.wait_time().has_value());
  EXPECT_FALSE(task.finished());
  EXPECT_FALSE(task.completed());
}

TEST(Task, DerivedTimesAfterExecution) {
  Task task;
  task.arrival = 2.0;
  task.start_time = 5.0;
  task.completion_time = 9.0;
  task.status = TaskStatus::kCompleted;
  EXPECT_DOUBLE_EQ(task.wait_time().value(), 3.0);
  EXPECT_DOUBLE_EQ(task.response_time().value(), 7.0);
  EXPECT_TRUE(task.finished());
  EXPECT_TRUE(task.completed());
}

TEST(Task, DefaultDeadlineIsInfinite) {
  Task task;
  EXPECT_EQ(task.deadline, e2c::core::kTimeInfinity);
}

}  // namespace
