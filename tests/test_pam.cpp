// Unit tests for PAM, the pruning-aware probabilistic policy (sched/pam.hpp).
#include "sched/pam.hpp"

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "workload/generator.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::hetero::PetKind;
using e2c::hetero::PetMatrix;
using e2c::sched::MachineView;
using e2c::sched::PamPolicy;
using e2c::sched::SchedulingContext;
using e2c::test::make_context;
using e2c::test::queued_task;

EetMatrix eet() { return EetMatrix({"T1"}, {"m0", "m1"}, {{4.0, 8.0}}); }

TEST(Pam, RegisteredAsBatchPolicy) {
  const auto policy = e2c::sched::make_policy("PAM");
  EXPECT_EQ(policy->name(), "PAM");
  EXPECT_EQ(policy->mode(), e2c::sched::PolicyMode::kBatch);
}

TEST(Pam, ThresholdValidated) {
  EXPECT_THROW(PamPolicy{-0.1}, e2c::InputError);
  EXPECT_THROW(PamPolicy{1.1}, e2c::InputError);
}

TEST(Pam, DeterministicSuccessProbabilityIsStep) {
  const EetMatrix matrix = eet();
  const auto feasible = queued_task(1, 0, /*deadline=*/5.0);
  const auto doomed = queued_task(2, 0, /*deadline=*/3.0);
  auto context = make_context(matrix, {&feasible, &doomed});
  EXPECT_DOUBLE_EQ(
      PamPolicy::success_probability(context, feasible, context.machines()[0]), 1.0);
  EXPECT_DOUBLE_EQ(
      PamPolicy::success_probability(context, doomed, context.machines()[0]), 0.0);
}

TEST(Pam, StochasticSuccessProbabilityUsesPet) {
  const EetMatrix matrix = eet();
  const PetMatrix pet = PetMatrix::homoscedastic(matrix, PetKind::kNormal, 0.25);
  const auto task = queued_task(1, 0, /*deadline=*/4.0);  // exactly the mean
  std::vector<MachineView> machines{{0, 0, 0.0, e2c::sched::kUnlimitedSlots, 1.0, 10.0}};
  SchedulingContext context(0.0, matrix, std::move(machines), {&task}, {}, &pet);
  // Completion mean 4.0 == deadline: P = 0.5 under the normal approximation.
  EXPECT_NEAR(PamPolicy::success_probability(context, task, context.machines()[0]), 0.5,
              1e-9);
  EXPECT_TRUE(context.stochastic());
  EXPECT_NEAR(context.exec_stddev(task, context.machines()[0]), 1.0, 1e-9);
}

TEST(Pam, PrunesRiskyTasks) {
  const EetMatrix matrix = eet();
  const PetMatrix pet = PetMatrix::homoscedastic(matrix, PetKind::kNormal, 0.25);
  // deadline 4.2: slack 0.2, sigma 1.0 -> P ~ 0.58 < 0.9 threshold -> pruned.
  const auto risky = queued_task(1, 0, /*deadline=*/4.2);
  // deadline 8: slack 4, P ~ 1 -> mapped.
  const auto safe = queued_task(2, 0, /*deadline=*/8.0);
  std::vector<MachineView> machines{{0, 0, 0.0, e2c::sched::kUnlimitedSlots, 1.0, 10.0}};
  SchedulingContext context(0.0, matrix, std::move(machines), {&risky, &safe}, {}, &pet);
  PamPolicy policy(0.9);
  const auto assignments = policy.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].task, 2u);
}

TEST(Pam, ZeroThresholdMapsEverythingWithSlots) {
  const EetMatrix matrix = eet();
  const PetMatrix pet = PetMatrix::homoscedastic(matrix, PetKind::kNormal, 0.25);
  const auto t1 = queued_task(1, 0, /*deadline=*/0.5);  // doomed but threshold 0
  std::vector<MachineView> machines{{0, 0, 0.0, e2c::sched::kUnlimitedSlots, 1.0, 10.0},
                                    {1, 1, 0.0, e2c::sched::kUnlimitedSlots, 1.0, 10.0}};
  SchedulingContext context(0.0, matrix, std::move(machines), {&t1}, {}, &pet);
  PamPolicy policy(0.0);
  EXPECT_EQ(policy.schedule(context).size(), 1u);
}

TEST(Pam, PicksMinExpectedCompletionAmongSafePairs) {
  const EetMatrix matrix = eet();  // m0 is 4 s, m1 is 8 s
  const auto task = queued_task(1, 0, /*deadline=*/100.0);
  auto context = make_context(matrix, {&task});
  PamPolicy policy(0.9);
  const auto assignments = policy.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 0u);
}

TEST(PamSimulation, PruningImprovesRobustnessUnderVariance) {
  // Stochastic heterogeneous system at high intensity: PAM (threshold 0.9)
  // should complete at least as much as plain MM, because it never wastes
  // machine time on likely-doomed tasks. Paired workloads, 5 replications.
  auto base = e2c::exp::heterogeneous_classroom(2);
  base.pet = PetMatrix::homoscedastic(base.eet, PetKind::kLognormal, 0.4);
  const auto machine_types = e2c::exp::machine_types_of(base);

  double pam_total = 0.0;
  double mm_total = 0.0;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    const auto generator = e2c::workload::config_for_intensity(
        base.eet, machine_types, e2c::workload::Intensity::kHigh, 60.0, 1000 + rep);
    const auto trace = e2c::workload::generate_workload(base.eet, generator);
    for (const bool use_pam : {true, false}) {
      auto config = base;
      config.sampling_seed = 555 + rep;
      e2c::sched::Simulation simulation(
          config, use_pam ? std::make_unique<PamPolicy>(0.9)
                          : e2c::sched::make_policy("MM"));
      simulation.load(trace);
      simulation.run();
      (use_pam ? pam_total : mm_total) +=
          simulation.counters().completion_percent();
    }
  }
  EXPECT_GE(pam_total, mm_total - 1.0);  // at worst a point behind, never collapse
}

}  // namespace
