// Integration-grade unit tests for the Simulation (sched/simulation.hpp):
// the full arrival -> batch queue -> scheduler -> machine -> terminal-state
// pipeline of the paper's Fig. 1.
#include "sched/simulation.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sched/registry.hpp"
#include "util/error.hpp"
#include "workload/workload.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::sched::Simulation;
using e2c::sched::SystemConfig;
using e2c::workload::TaskDef;
using e2c::workload::TaskStatus;
using e2c::workload::Workload;

// Two machines: m0 generalist, m1 specialist for T2.
SystemConfig two_machine_system(std::size_t queue_capacity = 2) {
  EetMatrix eet({"T1", "T2"}, {"m0", "m1"}, {{4.0, 6.0}, {5.0, 2.0}});
  return e2c::sched::make_default_system(std::move(eet), queue_capacity);
}

TaskDef make_task(std::uint64_t id, std::size_t type, double arrival, double deadline) {
  TaskDef task;
  task.id = id;
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

TEST(Simulation, SingleTaskCompletes) {
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 1.0, 100.0)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kCompleted);
  EXPECT_EQ(state.machine[0], 0u);  // T1 fastest on m0
  EXPECT_DOUBLE_EQ(state.start_time[0], 1.0);
  EXPECT_DOUBLE_EQ(state.completion_time[0], 5.0);
  EXPECT_EQ(simulation.counters().completed, 1u);
  EXPECT_TRUE(simulation.finished());
}

TEST(Simulation, InfiniteDeadlineNeverCancelled) {
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("FCFS"));
  simulation.load(Workload({make_task(0, 0, 0.0, e2c::core::kTimeInfinity)}));
  simulation.run();
  EXPECT_EQ(simulation.task_state().status[0], TaskStatus::kCompleted);
}

TEST(Simulation, TaskDroppedWhenDeadlinePassesMidRun) {
  // T1 on m0 takes 4 s; deadline at 3 s drops it mid-execution (paper: "if a
  // task missed its deadline while executing on the machine, it is dropped").
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 3.0)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kDropped);
  EXPECT_DOUBLE_EQ(state.missed_time[0], 3.0);
  EXPECT_FALSE(e2c::core::time_set(state.completion_time[0]));
  EXPECT_EQ(simulation.counters().dropped, 1u);
  EXPECT_EQ(simulation.counters().completed, 0u);
}

TEST(Simulation, CompletionExactlyAtDeadlineCounts) {
  // T1 on m0: completes at exactly 4.0 == deadline -> completed, not dropped
  // (completion events outrank deadline events at equal times).
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 4.0)}));
  simulation.run();
  EXPECT_EQ(simulation.task_state().status[0], TaskStatus::kCompleted);
}

TEST(Simulation, DeadlineAtExactDispatchInstantCancels) {
  // Queue capacity 1 on each machine: task 2 waits in the batch queue until a
  // slot frees at t=4 when task 0 completes. Its deadline is also 4.0 — and
  // deadline events outrank scheduler events at equal times, so the task is
  // cancelled at the very instant it would otherwise have been dispatched.
  Simulation simulation(two_machine_system(1), e2c::sched::make_policy("MM"));
  simulation.load(Workload({make_task(0, 0, 0.0, 100.0), make_task(1, 0, 0.0, 100.0),
                            make_task(2, 0, 0.0, 4.0)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[2], TaskStatus::kCancelled);
  EXPECT_DOUBLE_EQ(state.missed_time[2], 4.0);
  EXPECT_EQ(state.machine[2], e2c::workload::kNoMachine);
  EXPECT_EQ(simulation.counters().cancelled, 1u);
  EXPECT_EQ(simulation.counters().completed, 2u);
}

TEST(Simulation, TaskCancelledWhenStuckInBatchQueue) {
  // Batch mode, queue capacity 1. Three simultaneous T1 tasks: two can be
  // mapped (one running + one queued per... two machines), the extras wait in
  // the batch queue. With tight deadlines the waiting task is cancelled.
  SystemConfig system = two_machine_system(/*queue_capacity=*/1);
  Simulation simulation(system, e2c::sched::make_policy("MM"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 6; ++i) {
    tasks.push_back(make_task(i, 0, 0.0, 4.5));  // only the first wave fits
  }
  simulation.load(Workload(std::move(tasks)));
  simulation.run();
  EXPECT_GT(simulation.counters().cancelled, 0u);
  const auto& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (state.status[i] == TaskStatus::kCancelled) {
      EXPECT_EQ(state.machine[i], e2c::workload::kNoMachine);
      EXPECT_DOUBLE_EQ(state.missed_time[i], 4.5);
    }
  }
}

TEST(Simulation, MissedTasksPanelOrderedByMissTime) {
  SystemConfig system = two_machine_system();
  Simulation simulation(system, e2c::sched::make_policy("FCFS"));
  simulation.load(Workload({make_task(0, 0, 0.0, 2.0),   // dropped at 2
                            make_task(1, 0, 0.5, 3.0)}));  // dropped at 3
  simulation.run();
  const auto missed = simulation.missed_tasks();
  ASSERT_EQ(missed.size(), 2u);
  const auto& state = simulation.task_state();
  EXPECT_LE(state.missed_time[missed[0]], state.missed_time[missed[1]]);
}

TEST(Simulation, CountersAddUp) {
  SystemConfig system = two_machine_system(1);
  Simulation simulation(system, e2c::sched::make_policy("MSD"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 20; ++i) {
    tasks.push_back(make_task(i, i % 2, static_cast<double>(i) * 0.3,
                              static_cast<double>(i) * 0.3 + 6.0));
  }
  simulation.load(Workload(std::move(tasks)));
  simulation.run();
  const auto& counters = simulation.counters();
  EXPECT_EQ(counters.total, 20u);
  EXPECT_EQ(counters.completed + counters.cancelled + counters.dropped, counters.total);
  EXPECT_TRUE(simulation.finished());
  for (std::size_t i = 0; i < simulation.task_state().size(); ++i) {
    EXPECT_TRUE(simulation.task_state().finished(i));
  }
}

TEST(Simulation, ImmediatePolicyEmptiesBatchQueueInstantly) {
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("MECT"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 10; ++i) {
    tasks.push_back(make_task(i, 0, 0.0, 1000.0));
  }
  simulation.load(Workload(std::move(tasks)));
  simulation.run();
  // Unbounded machine queues: nothing is ever left unmapped.
  EXPECT_EQ(simulation.counters().completed, 10u);
  EXPECT_TRUE(simulation.batch_queue_ids().empty());
}

TEST(Simulation, MectSpreadsLoadAcrossMachines) {
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("MECT"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 8; ++i) tasks.push_back(make_task(i, 0, 0.0, 1000.0));
  simulation.load(Workload(std::move(tasks)));
  simulation.run();
  const auto s0 = simulation.machine(0).finalize_stats(simulation.engine().now());
  const auto s1 = simulation.machine(1).finalize_stats(simulation.engine().now());
  EXPECT_GT(s0.tasks_completed, 0u);
  EXPECT_GT(s1.tasks_completed, 0u);  // overflowed onto the slower machine
}

TEST(Simulation, DeterministicReplay) {
  // Same system, workload, policy -> bit-identical task records.
  const SystemConfig system = two_machine_system();
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 30; ++i) {
    tasks.push_back(make_task(i, i % 2, static_cast<double>(i) * 0.7,
                              static_cast<double>(i) * 0.7 + 9.0));
  }
  const Workload workload((std::vector<TaskDef>(tasks)));

  auto run_once = [&] {
    Simulation simulation(system, e2c::sched::make_policy("MM"));
    simulation.load(workload);
    simulation.run();
    std::vector<std::tuple<TaskStatus, std::uint32_t, double>> records;
    const auto& state = simulation.task_state();
    for (std::size_t i = 0; i < state.size(); ++i) {
      records.emplace_back(state.status[i], state.machine[i], state.completion_time[i]);
    }
    return records;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, StepMatchesRun) {
  const SystemConfig system = two_machine_system();
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 10; ++i) {
    tasks.push_back(make_task(i, i % 2, static_cast<double>(i), 1000.0));
  }
  const Workload workload((std::vector<TaskDef>(tasks)));

  Simulation run_sim(system, e2c::sched::make_policy("MECT"));
  run_sim.load(workload);
  run_sim.run();

  Simulation step_sim(system, e2c::sched::make_policy("MECT"));
  step_sim.load(workload);
  while (step_sim.step()) {
  }
  EXPECT_EQ(step_sim.counters().completed, run_sim.counters().completed);
  EXPECT_DOUBLE_EQ(step_sim.engine().now(), run_sim.engine().now());
}

TEST(Simulation, EnergyPositiveAndSplitAcrossMachines) {
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 100.0)}));
  simulation.run();
  const double total = simulation.total_energy_joules();
  EXPECT_GT(total, 0.0);
  double by_machine = 0.0;
  for (std::size_t m = 0; m < simulation.machine_count(); ++m) {
    by_machine += simulation.machine(m).energy_joules(simulation.engine().now());
  }
  EXPECT_NEAR(total, by_machine, 1e-9);
}

TEST(Simulation, TypeOntimeRateTracksOutcomes) {
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("MECT"));
  simulation.load(Workload({
      make_task(0, 0, 0.0, 100.0),  // completes
      make_task(1, 1, 0.0, 1.0),    // T2 on m1 takes 2 s -> dropped at 1
  }));
  simulation.run();
  EXPECT_DOUBLE_EQ(simulation.type_ontime_rate(0), 1.0);
  EXPECT_DOUBLE_EQ(simulation.type_ontime_rate(1), 0.0);
  EXPECT_THROW((void)simulation.type_ontime_rate(9), e2c::InputError);
}

TEST(Simulation, GuardsMisuse) {
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("FCFS"));
  EXPECT_THROW(simulation.run(), e2c::InputError);  // load() first
  simulation.load(Workload({make_task(0, 0, 0.0, 10.0)}));
  EXPECT_THROW(simulation.load(Workload(std::vector<TaskDef>{})),
               e2c::InputError);  // only once
}

TEST(Simulation, RejectsBadConstruction) {
  EXPECT_THROW(Simulation(two_machine_system(), nullptr), e2c::InputError);
  SystemConfig no_machines = two_machine_system();
  no_machines.machines.clear();
  EXPECT_THROW(Simulation(no_machines, e2c::sched::make_policy("FCFS")), e2c::InputError);
  SystemConfig bad_type = two_machine_system();
  bad_type.machines[0].type = 99;
  EXPECT_THROW(Simulation(bad_type, e2c::sched::make_policy("FCFS")), e2c::InputError);
}

TEST(Simulation, RejectsDuplicateTaskIds) {
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("FCFS"));
  EXPECT_THROW(
      simulation.load(Workload({make_task(3, 0, 0.0, 5.0), make_task(3, 0, 1.0, 6.0)})),
      e2c::InputError);
}

TEST(Simulation, RejectsWorkloadOutsideEet) {
  Simulation simulation(two_machine_system(), e2c::sched::make_policy("FCFS"));
  EXPECT_THROW(simulation.load(Workload({make_task(0, 7, 0.0, 5.0)})), e2c::InputError);
}

// Conservative batch policy that maps tasks only onto *idle* machines (a
// shape students actually write: "wait until the machine is free"). It keeps
// the rest of the batch queue waiting for the next scheduling trigger, which
// makes it sensitive to a trigger being lost.
class IdleOnlyPolicy : public e2c::sched::Policy {
 public:
  [[nodiscard]] std::string name() const override { return "IdleOnly"; }
  [[nodiscard]] e2c::sched::PolicyMode mode() const override {
    return e2c::sched::PolicyMode::kBatch;
  }
  void schedule_into(e2c::sched::SchedulingContext& context,
                     std::vector<e2c::sched::Assignment>& out) override {
    out.clear();
    for (const TaskDef* task : context.batch_queue()) {
      for (std::size_t m = 0; m < context.machines().size(); ++m) {
        const e2c::sched::MachineView& view = context.machines()[m];
        if (view.free_slots == 0) continue;
        if (view.ready_time > context.now()) continue;  // busy: defer the task
        out.push_back(e2c::sched::Assignment{task->id, view.id});
        context.commit(*task, m);
        break;
      }
    }
  }
};

TEST(Simulation, DeadlineDropOfRunningTaskRetriggersScheduler) {
  // Regression: Machine::remove on the *running* task with an empty local
  // queue used to skip the on_slot_freed notification (start_next() returns
  // early before reaching it), so no scheduling round ever followed and
  // batch-queue tasks waited forever. One machine; A and B arrive at t=0;
  // the idle-only policy maps A and defers B; A's deadline at t=2 drops it
  // mid-run with nothing queued locally. B must dispatch at the drop instant.
  EetMatrix eet({"T1"}, {"m0"}, {{4.0}});
  SystemConfig system = e2c::sched::make_default_system(std::move(eet), 2);
  Simulation simulation(std::move(system), std::make_unique<IdleOnlyPolicy>());
  simulation.load(Workload({make_task(0, 0, 0.0, 2.0),
                            make_task(1, 0, 0.0, e2c::core::kTimeInfinity)}));
  simulation.run();

  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kDropped);
  EXPECT_DOUBLE_EQ(state.missed_time[0], 2.0);

  // Pre-fix, B was stuck in the batch queue when the calendar drained.
  EXPECT_EQ(state.status[1], TaskStatus::kCompleted);
  ASSERT_TRUE(e2c::core::time_set(state.start_time[1]));
  EXPECT_DOUBLE_EQ(state.start_time[1], 2.0);  // dispatched at the drop
  EXPECT_DOUBLE_EQ(state.completion_time[1], 6.0);
  EXPECT_TRUE(simulation.finished());
  EXPECT_TRUE(simulation.batch_queue_ids().empty());
}

TEST(Simulation, BatchQueueVisibleDuringStepping) {
  SystemConfig system = two_machine_system(/*queue_capacity=*/1);
  Simulation simulation(system, e2c::sched::make_policy("MM"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 8; ++i) tasks.push_back(make_task(i, 0, 0.0, 50.0));
  simulation.load(Workload(std::move(tasks)));
  // Step until the scheduler ran once; with 2 machines x (1 run + 1 queued)
  // at most 4 tasks leave the batch queue immediately.
  bool saw_waiting = false;
  while (simulation.step()) {
    if (!simulation.batch_queue_ids().empty() && simulation.engine().now() > 0.0) {
      saw_waiting = true;
    }
  }
  EXPECT_TRUE(saw_waiting);
}

}  // namespace
