// Tests for the resident sweep service (exp/serve.hpp): the job codec, the
// byte-identical-results guarantee against direct runs, worker crash
// supervision, backlog busy-rejection, and SIGTERM drain. The service runs
// as the real e2c_experiment binary (fork+exec) and clients use the library
// submit_job path — the same split production uses. Fault injection uses the
// worker-side E2C_SERVE_TEST_* env hooks (see serve.cpp), inherited through
// the exec, so crashes and slow units are deterministic.
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/cell_codec.hpp"
#include "exp/experiment.hpp"
#include "exp/job_codec.hpp"
#include "exp/journal.hpp"
#include "exp/serve.hpp"
#include "exp/spec_io.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/framing.hpp"
#include "util/ini.hpp"

namespace {

namespace exp = e2c::exp;
namespace util = e2c::util;

#ifndef E2C_EXPERIMENT_BIN
#error "E2C_EXPERIMENT_BIN must be defined by the build"
#endif

std::string config_text(std::uint64_t seed = 7) {
  return "[sweep]\n"
         "policies = FCFS, MECT\n"
         "intensities = low, high\n"
         "replications = 2\n"
         "duration = 60\n"
         "seed = " +
         std::to_string(seed) + "\n";
}

std::string csv_of(const exp::ExperimentResult& result) {
  return util::to_csv(exp::result_csv(result));
}

/// The ground truth a submitted job must match byte for byte: the same
/// config run directly on the crash-isolated process backend.
exp::ExperimentResult direct_run(const std::string& text) {
  const auto spec = exp::spec_from_ini(util::IniFile::parse(text, "test config"));
  exp::RunOptions options;
  options.workers = 2;
  options.backend = exp::Backend::kProcs;
  return exp::run_experiment(spec, options);
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem;
}

/// fork+execs `e2c_experiment --serve SOCKET extra...`; the child inherits
/// the caller's environment (ScopedEnv hooks reach the service's workers).
pid_t start_service(const std::string& socket_path,
                    const std::vector<std::string>& extra,
                    const std::string& stdout_path = {}) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (!stdout_path.empty()) {
      if (std::freopen(stdout_path.c_str(), "w", stdout) == nullptr) ::_exit(97);
    }
    std::vector<std::string> args = {E2C_EXPERIMENT_BIN, "--serve", socket_path};
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(E2C_EXPERIMENT_BIN, argv.data());
    ::_exit(98);  // exec failed
  }
  return pid;
}

/// True when something is accepting connections on \p socket_path. The
/// supervisor sees the probe as a client that hung up before submitting
/// and just drops it.
bool service_up(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) return false;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const bool up =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0;
  ::close(fd);
  return up;
}

/// Blocks until the service accepts connections (or ~5 s pass): submitting
/// before listen() would read as a stale socket.
void wait_for_service(const std::string& socket_path) {
  for (int attempt = 0; attempt < 250; ++attempt) {
    if (service_up(socket_path)) return;
    ::usleep(20 * 1000);
  }
  FAIL() << "service at " << socket_path << " never came up";
}

/// SIGTERMs the service and asserts the drain exits 0.
void stop_service(pid_t pid) {
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---- codec ---------------------------------------------------------------

TEST(JobCodec, FramesRoundTrip) {
  util::ByteWriter writer;
  exp::encode_job_submit(writer, {"[sweep]\npolicies = FCFS\n"});
  const auto submit = exp::decode_job_submit(writer.bytes());
  EXPECT_EQ(submit.ini_text, "[sweep]\npolicies = FCFS\n");
  EXPECT_EQ(exp::peek_job_frame(writer.bytes()), exp::JobFrame::kSubmit);

  writer.clear();
  exp::encode_job_accepted(writer, {42, 6, 20, 8});
  const auto accepted = exp::decode_job_accepted(writer.bytes());
  EXPECT_EQ(accepted.job_id, 42u);
  EXPECT_EQ(accepted.cells_total, 6u);
  EXPECT_EQ(accepted.replications, 20u);
  EXPECT_EQ(accepted.workers, 8u);

  writer.clear();
  exp::encode_job_busy(writer, {3, 4, 1});
  const auto busy = exp::decode_job_busy(writer.bytes());
  EXPECT_EQ(busy.in_service, 3u);
  EXPECT_EQ(busy.backlog, 4u);
  EXPECT_EQ(busy.draining, 1u);

  writer.clear();
  exp::encode_worker_run_unit(writer, {0xDEADBEEFu, 2, 5, 1});
  const auto unit = exp::decode_worker_run_unit(writer.bytes());
  EXPECT_EQ(unit.job_key, 0xDEADBEEFu);
  EXPECT_EQ(unit.slot, 2u);
  EXPECT_EQ(unit.rep, 5u);
  EXPECT_EQ(unit.attempt, 1u);
}

TEST(JobCodec, RejectsCorruptFrames) {
  util::ByteWriter writer;
  exp::encode_job_accepted(writer, {1, 2, 3, 4});
  const std::string payload(writer.bytes());
  EXPECT_THROW((void)exp::decode_job_accepted(payload.substr(0, payload.size() / 2)),
               e2c::InputError);
  EXPECT_THROW((void)exp::decode_job_accepted(payload + "x"), e2c::InputError);
  EXPECT_THROW((void)exp::decode_job_busy(payload), e2c::InputError);  // wrong kind
  EXPECT_THROW((void)exp::peek_job_frame(""), e2c::InputError);
  std::string wrong_version = payload;
  wrong_version[0] = static_cast<char>(0x7F);
  EXPECT_THROW((void)exp::peek_job_frame(wrong_version), e2c::InputError);
}

TEST(JobCodec, MetricsPayloadRoundTripsBitExactly) {
  const auto spec = exp::spec_from_ini(util::IniFile::parse(config_text(), "t"));
  const auto source = exp::run_experiment(spec, 2);
  for (const auto& cell : source.cells) {
    for (const auto& metrics : cell.runs) {
      const auto decoded =
          exp::decode_metrics_payload(exp::encode_metrics_payload(metrics));
      EXPECT_EQ(decoded.total_tasks, metrics.total_tasks);
      EXPECT_EQ(decoded.completion_percent, metrics.completion_percent);
      EXPECT_EQ(decoded.total_energy_joules, metrics.total_energy_joules);
      EXPECT_EQ(decoded.type_fairness_jain, metrics.type_fairness_jain);
    }
  }
}

TEST(JobCodec, JobKeyIsStableAndTextSensitive) {
  EXPECT_EQ(exp::job_key_of("abc"), exp::job_key_of("abc"));
  EXPECT_NE(exp::job_key_of("abc"), exp::job_key_of("abd"));
  EXPECT_NE(exp::job_key_of(""), exp::job_key_of(" "));
}

// ---- service behavior ----------------------------------------------------

TEST(Serve, TwoConcurrentClientsByteIdenticalToDirectRuns) {
  const std::string text_a = config_text(7);
  const std::string text_b = config_text(9);
  const std::string expected_a = csv_of(direct_run(text_a));
  const std::string expected_b = csv_of(direct_run(text_b));

  const std::string socket_path = temp_path("serve_two.sock");
  const pid_t service = start_service(socket_path, {"--serve-workers", "2"});
  wait_for_service(socket_path);

  // Two clients in flight at once: the pool interleaves both jobs' units.
  exp::ExperimentResult result_a;
  exp::ExperimentResult result_b;
  std::string error_a;
  std::string error_b;
  std::thread client_a([&] {
    try {
      result_a = exp::submit_job(socket_path, text_a);
    } catch (const std::exception& failure) {
      error_a = failure.what();
    }
  });
  std::thread client_b([&] {
    try {
      result_b = exp::submit_job(socket_path, text_b);
    } catch (const std::exception& failure) {
      error_b = failure.what();
    }
  });
  client_a.join();
  client_b.join();
  ASSERT_EQ(error_a, "");
  ASSERT_EQ(error_b, "");

  EXPECT_EQ(csv_of(result_a), expected_a);
  EXPECT_EQ(csv_of(result_b), expected_b);
  EXPECT_EQ(result_a.health.completed_cells, 4u);
  EXPECT_EQ(result_b.health.completed_cells, 4u);
  EXPECT_EQ(result_a.health.workers, 2u);

  // A repeat submission hits the warm caches and must not drift.
  const auto again = exp::submit_job(socket_path, text_a);
  EXPECT_EQ(csv_of(again), expected_a);

  stop_service(service);
}

TEST(Serve, CrashedWorkerMidJobIsRequeuedAndClientGetsCompleteResult) {
  const std::string text = config_text(7);
  const std::string expected = csv_of(direct_run(text));

  // Slot 1 rep 0 SIGKILLs its worker on the first attempt — a worker dying
  // mid-job. The supervisor must respawn, requeue, and finish the sweep.
  const ScopedEnv crash("E2C_SERVE_TEST_CRASH_UNIT", "1/0");
  const std::string socket_path = temp_path("serve_crash.sock");
  const pid_t service = start_service(socket_path, {"--serve-workers", "2"});
  wait_for_service(socket_path);

  const auto result = exp::submit_job(socket_path, text);
  EXPECT_EQ(csv_of(result), expected);
  EXPECT_EQ(result.health.completed_cells, 4u);
  EXPECT_EQ(result.health.failed_cells, 0u);
  EXPECT_GE(result.health.retries, 1u);
  EXPECT_GE(result.cell("FCFS", e2c::workload::Intensity::kHigh).attempts, 2u);

  stop_service(service);
}

TEST(Serve, RetriesExhaustedDegradesCellAndClientStillCompletes) {
  // Unit 1/0 SIGKILLs its worker on EVERY attempt: retries run out and the
  // cell must degrade to kFailed — journaled, streamed to the client, and
  // counted toward completion. Before the fix the supervisor dropped the
  // cell silently, so the client blocked forever on a job that could never
  // finalize and a drain never finished.
  const ScopedEnv crash("E2C_SERVE_TEST_CRASH_ALWAYS", "1/0");
  const std::string socket_path = temp_path("serve_exhaust.sock");
  const std::string journal_prefix = temp_path("serve_exhaust_journal");
  const pid_t service = start_service(
      socket_path,
      {"--serve-workers", "2", "--max-retries", "1", "--journal", journal_prefix});
  wait_for_service(socket_path);

  const auto result = exp::submit_job(socket_path, config_text(7));
  EXPECT_EQ(result.health.completed_cells, 3u);
  EXPECT_EQ(result.health.failed_cells, 1u);
  EXPECT_GE(result.health.retries, 1u);

  // Slot 1 is FCFS/high (policy-major, intensity-minor slot order).
  const auto& degraded = result.cell("FCFS", e2c::workload::Intensity::kHigh);
  EXPECT_EQ(degraded.status, exp::CellStatus::kFailed);
  EXPECT_TRUE(degraded.runs.empty());
  EXPECT_EQ(degraded.attempts, 2u);  // --max-retries 1 → initial + 1 retry
  for (const auto* policy : {"FCFS", "MECT"}) {
    for (const auto intensity :
         {e2c::workload::Intensity::kLow, e2c::workload::Intensity::kHigh}) {
      const auto& cell = result.cell(policy, intensity);
      if (&cell == &degraded) continue;
      EXPECT_EQ(cell.status, exp::CellStatus::kOk);
      EXPECT_EQ(cell.runs.size(), 2u);
    }
  }

  // The journal recorded the degraded cell alongside the ok ones.
  const auto contents = exp::read_journal(journal_prefix + ".job1");
  EXPECT_EQ(contents.cells_total, 4u);
  EXPECT_EQ(contents.cells.size(), 4u);
  std::size_t journaled_failures = 0;
  for (const auto& [slot, cell] : contents.cells) {
    if (cell.status == exp::CellStatus::kFailed) {
      ++journaled_failures;
      EXPECT_EQ(slot, 1u);
    }
  }
  EXPECT_EQ(journaled_failures, 1u);

  // The degraded job must not linger in the backlog: the drain sees an
  // empty service and exits 0 promptly.
  stop_service(service);
}

TEST(Serve, BacklogOverflowIsBusyRejected) {
  // One worker, 300 ms per unit, backlog 1: the first job occupies the
  // service long enough for a second submit to bounce.
  const ScopedEnv delay("E2C_SERVE_TEST_UNIT_DELAY_MS", "300");
  const std::string socket_path = temp_path("serve_busy.sock");
  const pid_t service =
      start_service(socket_path, {"--serve-workers", "1", "--backlog", "1"});
  wait_for_service(socket_path);

  const std::string text = config_text(7);
  exp::ExperimentResult slow_result;
  std::string slow_error;
  std::thread slow_client([&] {
    try {
      slow_result = exp::submit_job(socket_path, text);
    } catch (const std::exception& failure) {
      slow_error = failure.what();
    }
  });
  ::usleep(400 * 1000);  // let the first job be admitted

  try {
    (void)exp::submit_job(socket_path, text);
    FAIL() << "expected a busy rejection";
  } catch (const e2c::IoError& busy) {
    const std::string message = busy.what();
    EXPECT_NE(message.find("busy"), std::string::npos) << message;
    EXPECT_NE(message.find("backlog 1"), std::string::npos) << message;
  }

  slow_client.join();
  ASSERT_EQ(slow_error, "");
  EXPECT_EQ(slow_result.health.completed_cells, 4u);  // rejected ≠ disturbed

  stop_service(service);
}

TEST(Serve, SigtermDrainsInFlightJobsJournalsAndExitsZero) {
  const ScopedEnv delay("E2C_SERVE_TEST_UNIT_DELAY_MS", "150");
  const std::string socket_path = temp_path("serve_drain.sock");
  const std::string journal_prefix = temp_path("serve_drain_journal");
  const std::string stdout_path = temp_path("serve_drain_stdout.txt");
  const pid_t service = start_service(
      socket_path, {"--serve-workers", "2", "--journal", journal_prefix},
      stdout_path);
  wait_for_service(socket_path);

  // 8 units x 150 ms on 2 workers ≈ 600 ms of sweep: the SIGTERM lands
  // mid-job, and the drain must still deliver the complete result.
  const std::string text = config_text(7);
  exp::ExperimentResult result;
  std::string error;
  std::thread client([&] {
    try {
      result = exp::submit_job(socket_path, text);
    } catch (const std::exception& failure) {
      error = failure.what();
    }
  });
  ::usleep(250 * 1000);
  ASSERT_EQ(::kill(service, SIGTERM), 0);

  client.join();
  ASSERT_EQ(error, "") << "drain must finish admitted jobs, not abort them";
  EXPECT_EQ(result.health.completed_cells, 4u);
  EXPECT_EQ(csv_of(result), csv_of(direct_run(text)));

  int status = 0;
  ASSERT_EQ(::waitpid(service, &status, 0), service);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  std::ifstream out(stdout_path);
  std::stringstream captured;
  captured << out.rdbuf();
  EXPECT_NE(captured.str().find("service drained"), std::string::npos)
      << captured.str();

  // The per-job journal recorded every cell of the drained-through job.
  const auto contents = exp::read_journal(journal_prefix + ".job1");
  EXPECT_EQ(contents.cells_total, 4u);
  EXPECT_EQ(contents.cells.size(), 4u);
  for (const auto& [slot, cell] : contents.cells) {
    EXPECT_EQ(cell.status, exp::CellStatus::kOk);
    EXPECT_EQ(cell.runs.size(), 2u);
  }

  // After the drain the socket is gone: a fresh submit says so clearly.
  try {
    (void)exp::submit_job(socket_path, text);
    FAIL() << "expected a connection error after drain";
  } catch (const e2c::InputError& gone) {
    EXPECT_NE(std::string(gone.what()).find("no service socket"), std::string::npos)
        << gone.what();
  }
}

TEST(Serve, StaleSocketFileIsReplacedAndNonSocketRefused) {
  // A socket file with no listener behind it (crashed service) must be
  // replaced automatically...
  const std::string socket_path = temp_path("serve_stale.sock");
  {
    const pid_t service = start_service(socket_path, {"--serve-workers", "1"});
    wait_for_service(socket_path);
    ASSERT_EQ(::kill(service, SIGKILL), 0);  // die without unlinking
    int status = 0;
    ASSERT_EQ(::waitpid(service, &status, 0), service);
  }
  ASSERT_EQ(::access(socket_path.c_str(), F_OK), 0) << "stale socket should linger";
  {
    const pid_t service = start_service(socket_path, {"--serve-workers", "1"});
    wait_for_service(socket_path);
    const auto result = exp::submit_job(socket_path, config_text(7));
    EXPECT_EQ(result.health.completed_cells, 4u);
    stop_service(service);
  }

  // ...but a regular file in the way is never clobbered.
  const std::string decoy_path = temp_path("serve_decoy.txt");
  {
    std::ofstream decoy(decoy_path, std::ios::trunc);
    decoy << "not a socket\n";
  }
  exp::ServeOptions options;
  options.socket_path = decoy_path;
  options.workers = 1;
  options.drain_on_signals = false;
  EXPECT_THROW((void)exp::run_serve(options), e2c::InputError);
  std::ifstream still_there(decoy_path);
  std::string line;
  std::getline(still_there, line);
  EXPECT_EQ(line, "not a socket");
}

}  // namespace
