// Shared helpers for policy/simulation tests.
#pragma once

#include <vector>

#include "hetero/eet_matrix.hpp"
#include "sched/policy.hpp"
#include "workload/task.hpp"

namespace e2c::test {

/// A task present in the batch queue at time zero.
inline workload::TaskDef queued_task(workload::TaskId id, hetero::TaskTypeId type,
                                     double deadline = 1e9, double arrival = 0.0) {
  workload::TaskDef task;
  task.id = id;
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

/// Builds a context of idle machines (one per EET machine type, machine id ==
/// type id) with \p free_slots each, ready at \p ready_times (zeros if empty).
inline sched::SchedulingContext make_context(
    const hetero::EetMatrix& eet, const std::vector<const workload::TaskDef*>& queue,
    std::size_t free_slots = sched::kUnlimitedSlots,
    std::vector<double> ready_times = {}, std::vector<double> ontime_rates = {}) {
  std::vector<sched::MachineView> machines;
  for (std::size_t m = 0; m < eet.machine_type_count(); ++m) {
    sched::MachineView view;
    view.id = m;
    view.type = m;
    view.ready_time = m < ready_times.size() ? ready_times[m] : 0.0;
    view.free_slots = free_slots;
    view.idle_watts = 10.0;
    view.busy_watts = 100.0;
    machines.push_back(view);
  }
  return sched::SchedulingContext(0.0, eet, std::move(machines), queue,
                                  std::move(ontime_rates));
}

}  // namespace e2c::test
