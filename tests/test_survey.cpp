// Unit tests for the survey dataset + aggregation pipeline (edu/survey.hpp):
// the Fig. 8 reproduction must match the paper's published aggregates.
#include "edu/survey.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

namespace edu = e2c::edu;

const edu::MetricAggregate& find_metric(const std::vector<edu::MetricAggregate>& metrics,
                                        const std::string& name) {
  for (const auto& metric : metrics) {
    if (metric.metric == name) return metric;
  }
  throw std::runtime_error("metric not found: " + name);
}

class BundledSurveyTest : public testing::Test {
 protected:
  edu::SurveyDataset dataset_ = edu::SurveyDataset::bundled();
  edu::SurveySummary summary_ = dataset_.summarize();
};

TEST_F(BundledSurveyTest, DemographicsMatchPaper) {
  EXPECT_EQ(dataset_.size(), 23u);
  EXPECT_NEAR(summary_.male_fraction, 0.739, 0.001);
  EXPECT_NEAR(summary_.female_fraction, 0.261, 0.001);
  EXPECT_NEAR(summary_.undergraduate_fraction, 0.609, 0.001);
  EXPECT_NEAR(summary_.graduate_fraction, 0.391, 0.001);
  EXPECT_NEAR(summary_.passed_os_fraction, 0.435, 0.001);
  EXPECT_NEAR(summary_.programming_years_mean, 3.8, 0.1);
  EXPECT_DOUBLE_EQ(summary_.programming_years_median, 3.0);
}

TEST_F(BundledSurveyTest, Fig8aUserExperienceMeans) {
  const auto& ux = summary_.user_experience;
  EXPECT_NEAR(find_metric(ux, "installation").mean, 8.3, 0.05);
  EXPECT_NEAR(find_metric(ux, "intuitive GUI").mean, 8.35, 0.05);
  EXPECT_NEAR(find_metric(ux, "ease of use").mean, 8.3, 0.08);
  // The paper quotes 5.7 overall with female 4.8 / male 5.9; those gender
  // means imply (6*4.8 + 17*5.9)/23 = 5.61, so the published overall is
  // rounded. We match the gender means exactly and accept the implied mean.
  EXPECT_NEAR(find_metric(ux, "reports").mean, 5.7, 0.12);
  EXPECT_NEAR(find_metric(ux, "recommend to others").mean, 8.3, 0.05);
}

TEST_F(BundledSurveyTest, Fig8aGenderSplits) {
  const auto& ux = summary_.user_experience;
  EXPECT_NEAR(find_metric(ux, "intuitive GUI").female_mean, 9.3, 1e-9);
  EXPECT_NEAR(find_metric(ux, "intuitive GUI").male_mean, 8.0, 1e-9);
  EXPECT_NEAR(find_metric(ux, "ease of use").female_mean, 9.3, 1e-9);
  EXPECT_NEAR(find_metric(ux, "ease of use").male_mean, 7.9, 1e-9);
  EXPECT_NEAR(find_metric(ux, "reports").female_mean, 4.8, 1e-9);
  EXPECT_NEAR(find_metric(ux, "reports").male_mean, 5.9, 1e-9);
  EXPECT_NEAR(find_metric(ux, "recommend to others").female_mean, 9.7, 1e-9);
  EXPECT_NEAR(find_metric(ux, "recommend to others").male_mean, 7.8, 1e-9);
}

TEST_F(BundledSurveyTest, CustomSchedulingOnlyGraduates) {
  const auto& metric = find_metric(summary_.user_experience, "custom scheduling");
  EXPECT_EQ(metric.respondents, 9u);  // the 9 graduate students
  EXPECT_NEAR(metric.female_mean, 9.2, 1e-9);
  EXPECT_NEAR(metric.male_mean, 7.4, 1e-9);
  // Overall lands near the paper's 8.3 (exact value depends on the grad
  // gender split, which the paper does not publish).
  EXPECT_NEAR(metric.mean, 8.3, 0.25);
}

TEST_F(BundledSurveyTest, Fig8bLearningOutcomes) {
  const auto& lo = summary_.learning_outcomes;
  EXPECT_NEAR(find_metric(lo, "scheduling in heterogeneous systems").female_mean, 9.8,
              1e-9);
  EXPECT_NEAR(find_metric(lo, "scheduling in heterogeneous systems").male_mean, 8.2, 1e-9);
  EXPECT_NEAR(find_metric(lo, "scheduling in homogeneous systems").female_mean, 9.5, 1e-9);
  EXPECT_NEAR(find_metric(lo, "scheduling in homogeneous systems").male_mean, 8.4, 1e-9);
  EXPECT_NEAR(find_metric(lo, "impact of arrival rate").mean, 8.6, 0.05);
  EXPECT_NEAR(find_metric(lo, "overall usefulness").male_mean, 8.6, 1e-9);
  // The paper reports medians 8.7 / 8.8 for hetero/overall; the synthetic
  // medians land in that neighbourhood.
  EXPECT_NEAR(find_metric(lo, "scheduling in heterogeneous systems").median, 8.7, 0.5);
  EXPECT_NEAR(find_metric(lo, "overall usefulness").median, 8.8, 0.5);
}

TEST_F(BundledSurveyTest, QuizImprovementMatchesPaper) {
  EXPECT_NEAR(summary_.quiz_pre_mean, 7.6, 1e-9);
  EXPECT_NEAR(summary_.quiz_post_mean, 8.94, 1e-9);
  EXPECT_NEAR(summary_.quiz_improvement_percent, 17.6, 0.1);
}

TEST_F(BundledSurveyTest, AllScoresInRange) {
  for (const auto& response : dataset_.responses()) {
    for (double score : {response.install, response.gui, response.ease_of_use,
                         response.reports, response.recommend, response.hetero_scheduling,
                         response.homog_scheduling, response.arrival_rate_impact,
                         response.overall_usefulness}) {
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 10.0);
    }
    EXPECT_GE(response.quiz_pre, 0.0);
    EXPECT_LE(response.quiz_pre, 12.0);
    EXPECT_GE(response.quiz_post, 0.0);
    EXPECT_LE(response.quiz_post, 12.0);
    if (response.level == edu::Level::kUndergraduate) {
      EXPECT_FALSE(response.custom_scheduling.has_value());
    } else {
      EXPECT_TRUE(response.custom_scheduling.has_value());
    }
  }
}

TEST(SurveyPipeline, AggregateSkipsNullopt) {
  std::vector<edu::SurveyResponse> responses(3);
  responses[0].gender = edu::Gender::kFemale;
  responses[0].custom_scheduling = 8.0;
  responses[1].custom_scheduling = 6.0;
  // responses[2] has no custom_scheduling answer.
  const edu::SurveyDataset dataset(std::move(responses));
  const auto metric = dataset.aggregate(
      "custom", [](const edu::SurveyResponse& r) { return r.custom_scheduling; });
  EXPECT_EQ(metric.respondents, 2u);
  EXPECT_DOUBLE_EQ(metric.mean, 7.0);
  EXPECT_DOUBLE_EQ(metric.female_mean, 8.0);
  EXPECT_DOUBLE_EQ(metric.male_mean, 6.0);
}

TEST(SurveyPipeline, CsvRoundTrip) {
  const auto original = edu::SurveyDataset::bundled();
  const auto parsed = edu::SurveyDataset::from_csv_rows(original.to_csv_rows());
  ASSERT_EQ(parsed.size(), original.size());
  const auto a = original.summarize();
  const auto b = parsed.summarize();
  EXPECT_NEAR(a.quiz_pre_mean, b.quiz_pre_mean, 1e-3);
  EXPECT_NEAR(a.user_experience[1].female_mean, b.user_experience[1].female_mean, 1e-3);
  EXPECT_EQ(a.learning_outcomes.size(), b.learning_outcomes.size());
  for (std::size_t i = 0; i < original.responses().size(); ++i) {
    EXPECT_EQ(parsed.responses()[i].gender, original.responses()[i].gender);
    EXPECT_EQ(parsed.responses()[i].custom_scheduling.has_value(),
              original.responses()[i].custom_scheduling.has_value());
  }
}

TEST(SurveyPipeline, CsvRejectsMalformed) {
  EXPECT_THROW((void)edu::SurveyDataset::from_csv_rows({}), e2c::InputError);
  EXPECT_THROW((void)edu::SurveyDataset::from_csv_rows({{"just", "two"}}),
               e2c::InputError);
  auto rows = edu::SurveyDataset::bundled().to_csv_rows();
  rows[1][0] = "robot";  // unknown gender
  EXPECT_THROW((void)edu::SurveyDataset::from_csv_rows(rows), e2c::InputError);
}

TEST(SurveyPipeline, EmptyDatasetSummarizes) {
  const edu::SurveyDataset dataset;
  const auto summary = dataset.summarize();
  EXPECT_DOUBLE_EQ(summary.quiz_improvement_percent, 0.0);
  EXPECT_DOUBLE_EQ(summary.female_fraction, 0.0);
}

}  // namespace
