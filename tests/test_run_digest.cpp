// Run-digest guard for the simulation hot path.
//
// For every registered policy, three full simulations (plain, fault-injected,
// autoscaled) are reduced to one 64-bit FNV-1a digest over the complete
// per-task outcome records plus the summary metrics. The golden values below
// were captured from the std::map calendar / string-label implementation, so
// any refactor of the event queue, label machinery or batch-queue structure
// that changes *anything* observable — task statuses, timestamps (bitwise),
// counters, energy — fails here. This is the determinism contract: the
// calendar's (time, priority, insertion sequence) total order must be
// bit-identical across implementations.
//
// Regenerate goldens (only when an intentional semantic change lands):
//   E2C_PRINT_DIGESTS=1 ./test_run_digest --gtest_filter='*Digest*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "exp/scenario.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "workload/generator.hpp"

namespace {

using e2c::sched::Simulation;
using e2c::sched::SystemConfig;

class Fnv1a {
 public:
  void add_u64(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xFFu;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void add_double(double value) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    add_u64(bits);
  }
  // Sentinel times hash exactly as the old optional columns did: a
  // presence word followed by the value (0.0 when unset).
  void add_time(double value) noexcept {
    const bool set = e2c::core::time_set(value);
    add_u64(set ? 1u : 0u);
    add_double(set ? value : 0.0);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

std::uint64_t run_digest(SystemConfig config, std::unique_ptr<e2c::sched::Policy> policy,
                         double rho = 1.3, double duration = 40.0) {
  const auto machine_types = e2c::exp::machine_types_of(config);
  const auto generator = e2c::workload::config_for_offered_load(
      config.eet, machine_types, rho, duration, /*seed=*/20230607);
  const auto workload = e2c::workload::generate_workload(config.eet, generator);

  Simulation simulation(std::move(config), std::move(policy));
  simulation.load(workload);
  simulation.run();

  Fnv1a digest;
  const auto& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    digest.add_u64(state.id(i));
    digest.add_u64(state.type(i));
    digest.add_u64(static_cast<std::uint64_t>(state.status[i]));
    digest.add_u64(state.machine[i] == e2c::workload::kNoMachine
                       ? ~0ull
                       : static_cast<std::uint64_t>(state.machine[i]));
    digest.add_time(state.assignment_time[i]);
    digest.add_time(state.start_time[i]);
    digest.add_time(state.completion_time[i]);
    digest.add_time(state.missed_time[i]);
    digest.add_u64(state.retries[i]);
    digest.add_double(state.useful_seconds[i]);
    digest.add_double(state.lost_seconds[i]);
    digest.add_double(state.checkpoint_overhead_seconds[i]);
    digest.add_double(state.machine_seconds[i]);
  }
  const auto& counters = simulation.counters();
  digest.add_u64(counters.total);
  digest.add_u64(counters.completed);
  digest.add_u64(counters.cancelled);
  digest.add_u64(counters.dropped);
  digest.add_u64(counters.failed);
  digest.add_u64(counters.requeued);
  digest.add_double(simulation.engine().now());
  digest.add_u64(simulation.engine().processed_count());
  digest.add_double(simulation.total_energy_joules());
  return digest.value();
}

SystemConfig plain_system() { return e2c::exp::heterogeneous_classroom(2); }

SystemConfig faulty_system() {
  SystemConfig config = e2c::exp::heterogeneous_classroom(2);
  config.faults.enabled = true;
  config.faults.mtbf = 25.0;
  config.faults.mttr = 3.0;
  config.faults.seed = 99;
  return config;
}

SystemConfig autoscaled_system() {
  SystemConfig config = e2c::exp::heterogeneous_classroom(2);
  config.autoscaler.enabled = true;
  config.autoscaler.interval = 4.0;
  config.autoscaler.queue_high = 4;
  config.autoscaler.queue_low = 1;
  config.autoscaler.boot_delay = 1.5;
  config.autoscaler.min_online = 1;
  config.autoscaler.initially_offline = {2, 3};
  return config;
}

struct Scenario {
  const char* name;
  SystemConfig (*make)();
};

constexpr Scenario kScenarios[] = {
    {"plain", plain_system},
    {"faults", faulty_system},
    {"autoscaled", autoscaled_system},
};

// Golden digests captured from the seed implementation (std::map calendar,
// eager string labels, vector batch queue). Keyed "scenario/policy".
const std::map<std::string, std::uint64_t>& golden_digests() {
  static const std::map<std::string, std::uint64_t> golden = {
      // clang-format off
      {"plain/FCFS", 0xCB3E0F02E1197FCAull},
      {"plain/MEET", 0xBC8BBF9CDC4AAB12ull},
      {"plain/MECT", 0x4312A98D3F343548ull},
      {"plain/FTMIN-EET", 0x4312A98D3F343548ull},
      {"plain/MM", 0x4312A98D3F343548ull},
      {"plain/MMU", 0x4312A98D3F343548ull},
      {"plain/MSD", 0x4312A98D3F343548ull},
      {"plain/ELARE", 0x94C2DA303CA74898ull},
      {"plain/FELARE", 0x94C2DA303CA74898ull},
      {"plain/FairShare", 0x4312A98D3F343548ull},
      {"plain/PAM", 0x4312A98D3F343548ull},
      {"faults/FCFS", 0x87592684AF278DEAull},
      {"faults/MEET", 0x7C2E45C6B1504F0Full},
      {"faults/MECT", 0x38CA60D80096BB7Dull},
      {"faults/FTMIN-EET", 0xE12D27033F85E0C2ull},
      {"faults/MM", 0xC6AA9B47164B9F4Cull},
      {"faults/MMU", 0x24919A16A3FF2C00ull},
      {"faults/MSD", 0x24919A16A3FF2C00ull},
      {"faults/ELARE", 0x68CB9AC2CB2D0E7Eull},
      {"faults/FELARE", 0x5537C00A222B5B22ull},
      {"faults/FairShare", 0x1F0F0C8838852B5Eull},
      {"faults/PAM", 0xC6AA9B47164B9F4Cull},
      {"autoscaled/FCFS", 0xDC9719691B61D484ull},
      {"autoscaled/MEET", 0x2C9173D56889CD8Bull},
      {"autoscaled/MECT", 0x44DB6EDFDA5A4970ull},
      {"autoscaled/FTMIN-EET", 0x44DB6EDFDA5A4970ull},
      {"autoscaled/MM", 0xA3F6229C3082FCD4ull},
      {"autoscaled/MMU", 0xDCCCE1B62C20CD05ull},
      {"autoscaled/MSD", 0xABD57C1C441CD42Dull},
      {"autoscaled/ELARE", 0xDDBC735B3A2D5FF0ull},
      {"autoscaled/FELARE", 0x80A7B50323E5273Full},
      {"autoscaled/FairShare", 0x1F1C8B34E0A9EFF4ull},
      {"autoscaled/PAM", 0xA3F6229C3082FCD4ull},
      // clang-format on
  };
  return golden;
}

TEST(RunDigest, BitIdenticalAcrossAllPoliciesAndScenarios) {
  const bool print = std::getenv("E2C_PRINT_DIGESTS") != nullptr;
  const auto& golden = golden_digests();
  for (const Scenario& scenario : kScenarios) {
    for (const std::string& policy : e2c::sched::PolicyRegistry::instance().names()) {
      const std::string key = std::string(scenario.name) + "/" + policy;
      const std::uint64_t digest = run_digest(scenario.make(), e2c::sched::make_policy(policy));
      if (print) {
        printf("      {\"%s\", 0x%016llXull},\n", key.c_str(),
               static_cast<unsigned long long>(digest));
        continue;
      }
      const auto it = golden.find(key);
      ASSERT_NE(it, golden.end()) << "no golden digest for " << key;
      EXPECT_EQ(digest, it->second) << key << " diverged from the seed implementation";
    }
  }
}

// Same-process determinism: repeating a run must reproduce the digest exactly
// (catches hidden global state, address-dependent ordering, map iteration).
TEST(RunDigest, RepeatedRunsAreDeterministic) {
  const std::uint64_t first = run_digest(faulty_system(), e2c::sched::make_policy("MM"));
  const std::uint64_t second = run_digest(faulty_system(), e2c::sched::make_policy("MM"));
  EXPECT_EQ(first, second);
}

// Deep-queue goldens: large machine-queue capacities (the upper sizes of the
// queue-size ablation bench) at overload keep tens of tasks in the batch
// queue per round — the regime the incremental mappers optimize, and the one
// the default scenarios' capacity-2 queues barely reach.
const std::map<std::string, std::uint64_t>& deep_queue_goldens() {
  static const std::map<std::string, std::uint64_t> golden = {
      // clang-format off
      {"deepq1/MM", 0x83C5931A7A6F4ADAull},
      {"deepq1/MMU", 0x0303A6B38706BF6Dull},
      {"deepq1/MSD", 0xC513850C855272EFull},
      {"deepq1/ELARE", 0x884CB2E5F0172456ull},
      {"deepq1/FELARE", 0x335EDB6D22F1CC20ull},
      {"deepq1/PAM", 0x83C5931A7A6F4ADAull},
      {"deepq8/MM", 0x3D59725ABEA95F90ull},
      {"deepq8/MMU", 0x512A7CC396CD9BEBull},
      {"deepq8/MSD", 0x1CF7233F24595F0Full},
      {"deepq8/ELARE", 0x9E0463D97D43E024ull},
      {"deepq8/FELARE", 0xC99FD891789269D1ull},
      {"deepq8/PAM", 0x3D59725ABEA95F90ull},
      // clang-format on
  };
  return golden;
}

TEST(RunDigest, DeepQueueBatchGoldens) {
  const bool print = std::getenv("E2C_PRINT_DIGESTS") != nullptr;
  const auto& golden = deep_queue_goldens();
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{8}}) {
    for (const std::string& policy : e2c::sched::batch_policy_names()) {
      const std::string key = "deepq" + std::to_string(capacity) + "/" + policy;
      const std::uint64_t digest =
          run_digest(e2c::exp::heterogeneous_classroom(capacity),
                     e2c::sched::make_policy(policy), /*rho=*/4.0, /*duration=*/60.0);
      if (print) {
        printf("      {\"%s\", 0x%016llXull},\n", key.c_str(),
               static_cast<unsigned long long>(digest));
        continue;
      }
      const auto it = golden.find(key);
      ASSERT_NE(it, golden.end()) << "no golden digest for " << key;
      EXPECT_EQ(digest, it->second) << key << " diverged from the seed implementation";
    }
  }
}

// End-to-end decision equivalence: a full simulation digested under the fast
// mappers must match the same simulation under the reference mappers, for
// every batch policy and both queue regimes.
TEST(RunDigest, FastImplMatchesReferenceEndToEnd) {
  using e2c::sched::SchedImpl;
  for (const std::size_t capacity : {std::size_t{2}, std::size_t{16}}) {
    for (const std::string& policy : e2c::sched::batch_policy_names()) {
      e2c::sched::set_default_sched_impl(SchedImpl::kFast);
      const std::uint64_t fast =
          run_digest(e2c::exp::heterogeneous_classroom(capacity),
                     e2c::sched::make_policy(policy), /*rho=*/4.0, /*duration=*/60.0);
      e2c::sched::set_default_sched_impl(SchedImpl::kReference);
      const std::uint64_t reference =
          run_digest(e2c::exp::heterogeneous_classroom(capacity),
                     e2c::sched::make_policy(policy), /*rho=*/4.0, /*duration=*/60.0);
      e2c::sched::set_default_sched_impl(SchedImpl::kFast);
      EXPECT_EQ(fast, reference) << policy << " capacity " << capacity;
    }
  }
}

}  // namespace
