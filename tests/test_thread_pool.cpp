// Unit tests for the task-based thread pool (util/thread_pool.hpp).
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

using e2c::util::ThreadPool;

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ResultsInOrderOfFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }  // pool joined here
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
