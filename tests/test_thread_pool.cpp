// Unit tests for the task-based thread pool (util/thread_pool.hpp):
// submit/future plumbing, the bulk-submit path, and the work-stealing
// property that no queue's backlog can be stranded behind a busy worker.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <numeric>
#include <random>
#include <vector>

namespace {

using e2c::util::ThreadPool;

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ResultsInOrderOfFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ResolveWorkerCountIsTheSingleNormalizationPoint) {
  // The experiment backends and the CLI summary all report what "0 workers"
  // meant through this resolver; it must agree with the pool itself.
  EXPECT_GE(ThreadPool::resolve_worker_count(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_worker_count(0), ThreadPool(0).worker_count());
  EXPECT_EQ(ThreadPool::resolve_worker_count(3), 3u);
  EXPECT_EQ(ThreadPool(3).worker_count(), 3u);
}

TEST(ThreadPool, BulkSubmitRunsAllInFutureOrder) {
  ThreadPool pool(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 257; ++i) tasks.push_back([i] { return i * 3; });
  auto futures = pool.submit_bulk(std::move(tasks));
  ASSERT_EQ(futures.size(), 257u);
  for (int i = 0; i < 257; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 3);
}

TEST(ThreadPool, BulkSubmitEmptyBatchIsANoOp) {
  ThreadPool pool(2);
  auto futures = pool.submit_bulk(std::vector<std::function<void()>>{});
  EXPECT_TRUE(futures.empty());
}

TEST(ThreadPool, BulkSubmitPropagatesPerTaskExceptions) {
  ThreadPool pool(2);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i]() -> int {
      if (i == 7) throw std::runtime_error("boom");
      return i;
    });
  }
  auto futures = pool.submit_bulk(std::move(tasks));
  for (int i = 0; i < 16; ++i) {
    if (i == 7) {
      EXPECT_THROW((void)futures[7].get(), std::runtime_error);
    } else {
      EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
    }
  }
}

TEST(ThreadPool, StealsFromABlockedWorkersQueue) {
  // One of two workers parks on a gate. A bulk submit spreads tasks over
  // both per-worker queues, so roughly half land behind the parked worker —
  // without work stealing those tasks could not run until the gate opens,
  // and the waits below would time out.
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocker = pool.submit([gate] { gate.wait(); });

  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) tasks.push_back([&ran] { ran.fetch_add(1); });
  auto futures = pool.submit_bulk(std::move(tasks));
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready)
        << "task stranded behind the blocked worker: stealing is broken";
  }
  EXPECT_EQ(ran.load(), 64);

  release.set_value();
  blocker.get();
}

TEST(ThreadPool, BulkSubmitPropertyRandomizedShapes) {
  // Property over random (worker count, batch size, mixed singles) shapes:
  // every future completes with its task's value, in future order.
  std::mt19937 rng(20230807);
  for (int round = 0; round < 12; ++round) {
    const std::size_t workers = 1 + rng() % 8;
    const std::size_t batch = rng() % 120;
    ThreadPool pool(workers);
    std::vector<std::function<std::size_t()>> tasks;
    for (std::size_t i = 0; i < batch; ++i) tasks.push_back([i] { return i * i; });
    auto futures = pool.submit_bulk(std::move(tasks));
    // Interleave a few singles so both submit paths share the queues.
    std::vector<std::future<std::size_t>> singles;
    for (std::size_t i = 0; i < 5; ++i) {
      singles.push_back(pool.submit([i] { return 1000 + i; }));
    }
    for (std::size_t i = 0; i < batch; ++i) EXPECT_EQ(futures[i].get(), i * i);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(singles[i].get(), 1000 + i);
  }
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }  // pool joined here
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
