// Unit tests for the policy registry (sched/registry.hpp).
#include "sched/registry.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using e2c::sched::make_policy;
using e2c::sched::PolicyMode;
using e2c::sched::PolicyRegistry;

TEST(Registry, BuiltinsRegistered) {
  auto& registry = PolicyRegistry::instance();
  for (const char* name : {"FCFS", "MEET", "MECT", "MM", "MMU", "MSD", "ELARE",
                           "FELARE", "FairShare"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(Registry, CreateInstantiates) {
  const auto policy = make_policy("MECT");
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), "MECT");
  EXPECT_EQ(policy->mode(), PolicyMode::kImmediate);
}

TEST(Registry, LookupIsCaseInsensitive) {
  EXPECT_TRUE(PolicyRegistry::instance().contains("fcfs"));
  EXPECT_EQ(make_policy("mm")->name(), "MM");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_policy("DOES_NOT_EXIST"), e2c::UnknownPolicyError);
  EXPECT_FALSE(PolicyRegistry::instance().contains("DOES_NOT_EXIST"));
}

TEST(Registry, BuiltinModesMatchPaper) {
  // Fig. 3: FCFS/MECT/MEET immediate; MM/MMU/MSD/ELARE/FELARE batch.
  for (const std::string& name : e2c::sched::immediate_policy_names()) {
    EXPECT_EQ(make_policy(name)->mode(), PolicyMode::kImmediate) << name;
  }
  for (const std::string& name : e2c::sched::batch_policy_names()) {
    EXPECT_EQ(make_policy(name)->mode(), PolicyMode::kBatch) << name;
  }
}

// A trivial user-defined policy for registration tests.
class NullPolicy final : public e2c::sched::Policy {
 public:
  [[nodiscard]] std::string name() const override { return "Null"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  void schedule_into(e2c::sched::SchedulingContext&,
                     std::vector<e2c::sched::Assignment>& out) override {
    out.clear();
  }
};

TEST(Registry, UserPolicyRegistration) {
  auto& registry = PolicyRegistry::instance();
  registry.register_policy("TestNull", [] { return std::make_unique<NullPolicy>(); });
  EXPECT_TRUE(registry.contains("TestNull"));
  EXPECT_EQ(registry.create("TestNull")->name(), "Null");
}

TEST(Registry, ReRegistrationReplacesFactory) {
  auto& registry = PolicyRegistry::instance();
  registry.register_policy("TestReplace", [] { return std::make_unique<NullPolicy>(); });
  const auto before = registry.names().size();
  registry.register_policy("testreplace", [] { return std::make_unique<NullPolicy>(); });
  EXPECT_EQ(registry.names().size(), before);  // replaced, not duplicated
}

TEST(Registry, RejectsEmptyNameOrNullFactory) {
  auto& registry = PolicyRegistry::instance();
  EXPECT_THROW(registry.register_policy("", [] { return std::make_unique<NullPolicy>(); }),
               e2c::InputError);
  EXPECT_THROW(registry.register_policy("X", nullptr), e2c::InputError);
}

TEST(Registry, NamesListIncludesBuiltinsInOrder) {
  const auto names = PolicyRegistry::instance().names();
  ASSERT_GE(names.size(), 9u);
  EXPECT_EQ(names[0], "FCFS");
  EXPECT_EQ(names[1], "MEET");
  EXPECT_EQ(names[2], "MECT");
}

}  // namespace
