// Property tests across SUBSTRATE COMBINATIONS: the lifecycle/accounting
// invariants must hold when stochastic execution (PET), the communication
// model, the autoscaler and the memory model are enabled in any mix, for
// both an immediate and a batch policy.
#include <gtest/gtest.h>

#include "core/trace.hpp"
#include "exp/scenario.hpp"
#include "hetero/pet_matrix.hpp"
#include "mem/model_cache.hpp"
#include "net/comm_model.hpp"
#include "reports/metrics.hpp"
#include "sched/registry.hpp"
#include "workload/generator.hpp"

namespace {

using e2c::sched::Simulation;
using e2c::workload::TaskDef;
using e2c::workload::TaskStatus;

struct ComboCase {
  bool pet = false;
  bool comm = false;
  bool autoscale = false;
  bool memory = false;
  std::string policy = "MM";
};

std::vector<ComboCase> all_combos() {
  std::vector<ComboCase> cases;
  for (const std::string policy : {"MECT", "MM"}) {
    for (int mask = 0; mask < 16; ++mask) {
      ComboCase c;
      c.pet = (mask & 1) != 0;
      c.comm = (mask & 2) != 0;
      c.autoscale = (mask & 4) != 0;
      c.memory = (mask & 8) != 0;
      c.policy = policy;
      cases.push_back(c);
    }
  }
  return cases;
}

std::string combo_name(const testing::TestParamInfo<ComboCase>& info) {
  const ComboCase& c = info.param;
  std::string name = c.policy;
  name += c.pet ? "_pet" : "";
  name += c.comm ? "_comm" : "";
  name += c.autoscale ? "_scale" : "";
  name += c.memory ? "_mem" : "";
  return name.empty() ? "plain" : name;
}

class SubstrateComboTest : public testing::TestWithParam<ComboCase> {
 protected:
  void run_case(std::uint64_t seed = 77) {
    const ComboCase& combo = GetParam();
    system_ = e2c::exp::heterogeneous_classroom(2);
    if (combo.pet) {
      system_.pet = e2c::hetero::PetMatrix::homoscedastic(
          system_.eet, e2c::hetero::PetKind::kLognormal, 0.3);
    }
    if (combo.comm) {
      system_.comm = e2c::net::CommModel::uniform(
          system_.eet.task_type_count(), system_.eet.machine_type_count(), 5.0,
          e2c::net::LinkSpec{0.01, 20.0});
    }
    if (combo.autoscale) {
      system_.autoscaler.enabled = true;
      system_.autoscaler.interval = 1.5;
      system_.autoscaler.queue_high = 3;
      system_.autoscaler.queue_low = 0;
      system_.autoscaler.boot_delay = 1.0;
      system_.autoscaler.min_online = 1;
      system_.autoscaler.initially_offline = {2, 3};
    }
    if (combo.memory) {
      e2c::mem::MemoryModel memory;
      memory.model_mb.assign(system_.eet.task_type_count(), 2.0);
      memory.load_seconds.assign(system_.eet.task_type_count(), 1.0);
      memory.machine_memory_mb.assign(system_.eet.machine_type_count(), 4.0);
      system_.memory = memory;
    }

    const auto machine_types = e2c::exp::machine_types_of(system_);
    const auto generator = e2c::workload::config_for_intensity(
        system_.eet, machine_types, e2c::workload::Intensity::kMedium, 60.0, seed);
    workload_ = e2c::workload::generate_workload(system_.eet, generator);

    // The recorder observes the simulation's engine: detach it before the
    // old simulation (and engine) is destroyed, or its destructor would
    // unregister from freed memory.
    trace_.reset();
    simulation_ = std::make_unique<Simulation>(system_,
                                               e2c::sched::make_policy(GetParam().policy));
    trace_ = std::make_unique<e2c::core::TraceRecorder>(simulation_->engine());
    simulation_->load(workload_);
    simulation_->run();
  }

  e2c::sched::SystemConfig system_;
  e2c::workload::Workload workload_;
  std::unique_ptr<Simulation> simulation_;
  std::unique_ptr<e2c::core::TraceRecorder> trace_;
};

TEST_P(SubstrateComboTest, RunTerminatesWithEveryTaskTerminal) {
  run_case();
  EXPECT_TRUE(simulation_->finished());
  const auto& counters = simulation_->counters();
  EXPECT_EQ(counters.completed + counters.cancelled + counters.dropped, counters.total);
  EXPECT_GT(counters.total, 0u);
}

TEST_P(SubstrateComboTest, NoReservationLeaks) {
  run_case();
  for (std::size_t m = 0; m < simulation_->machine_count(); ++m) {
    EXPECT_EQ(simulation_->in_flight_count(m), 0u) << "machine " << m;
    EXPECT_FALSE(simulation_->machine(m).busy()) << "machine " << m;
    EXPECT_EQ(simulation_->machine(m).queue_length(), 0u) << "machine " << m;
  }
  EXPECT_TRUE(simulation_->batch_queue_ids().empty());
}

TEST_P(SubstrateComboTest, RecordsConsistentUnderAllSubstrates) {
  run_case();
  const auto& state = simulation_->task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    switch (state.status[i]) {
      case TaskStatus::kCompleted:
        EXPECT_LE(state.completion_time[i], state.deadline(i) + 1e-9);
        EXPECT_GE(state.start_time[i], state.arrival(i) - 1e-9);
        break;
      case TaskStatus::kCancelled:
        EXPECT_EQ(state.machine[i], e2c::workload::kNoMachine);
        break;
      case TaskStatus::kDropped:
        EXPECT_NE(state.machine[i], e2c::workload::kNoMachine);
        EXPECT_NEAR(state.missed_time[i], state.deadline(i), 1e-9);
        break;
      default:
        FAIL() << "non-terminal status after run";
    }
  }
}

TEST_P(SubstrateComboTest, EventOrderingMonotonic) {
  run_case();
  EXPECT_TRUE(trace_->is_monotonic());
}

TEST_P(SubstrateComboTest, EnergyNonNegativeAndBounded) {
  run_case();
  const double horizon = simulation_->engine().now();
  const double total = simulation_->total_energy_joules(horizon);
  const double dynamic = simulation_->total_dynamic_energy_joules(horizon);
  EXPECT_GE(total, 0.0);
  EXPECT_GE(dynamic, 0.0);
  EXPECT_LE(dynamic, total + 1e-6);  // idle draw can only add
  double ceiling = 0.0;
  for (const auto& machine : system_.machines) {
    ceiling += machine.power.busy_watts * horizon;
  }
  EXPECT_LE(total, ceiling + 1e-6);
}

TEST_P(SubstrateComboTest, DeterministicReplayWithAllSubstrates) {
  run_case(99);
  const auto first = simulation_->counters();
  const double first_energy = simulation_->total_energy_joules();
  run_case(99);
  EXPECT_EQ(simulation_->counters().completed, first.completed);
  EXPECT_EQ(simulation_->counters().cancelled, first.cancelled);
  EXPECT_EQ(simulation_->counters().dropped, first.dropped);
  EXPECT_DOUBLE_EQ(simulation_->total_energy_joules(), first_energy);
}

TEST_P(SubstrateComboTest, MetricsPipelineHandlesEveryCombo) {
  run_case();
  const auto metrics = e2c::reports::compute_metrics(*simulation_);
  EXPECT_NEAR(metrics.completion_percent + metrics.cancelled_percent +
                  metrics.dropped_percent,
              100.0, 1e-9);
  EXPECT_EQ(metrics.machine_utilization.size(), simulation_->machine_count());
  for (double utilization : metrics.machine_utilization) {
    EXPECT_GE(utilization, 0.0);
    EXPECT_LE(utilization, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubstrateCombos, SubstrateComboTest,
                         testing::ValuesIn(all_combos()), combo_name);

}  // namespace
