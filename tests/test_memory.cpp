// Unit tests for the multi-tenant memory substrate (mem/model_cache.hpp)
// and its simulation integration (cold-start penalties, Edge-MultiAI [22]).
#include "mem/model_cache.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/error.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::mem::EvictionPolicy;
using e2c::mem::MemoryModel;
using e2c::mem::ModelCache;
using e2c::workload::TaskDef;
using e2c::workload::Workload;

// Three models of 4 MB each with 2 s load penalty; 8 MB capacity holds two.
ModelCache two_slot_cache(EvictionPolicy eviction = EvictionPolicy::kLru) {
  return ModelCache(8.0, {4.0, 4.0, 4.0}, {2.0, 2.0, 2.0}, eviction);
}

TEST(ModelCache, ColdThenWarm) {
  ModelCache cache = two_slot_cache();
  EXPECT_DOUBLE_EQ(cache.on_execute(0), 2.0);  // cold
  EXPECT_DOUBLE_EQ(cache.on_execute(0), 0.0);  // warm
  EXPECT_TRUE(cache.is_warm(0));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(cache.used_mb(), 4.0);
}

TEST(ModelCache, EvictsWhenFull) {
  ModelCache cache = two_slot_cache();
  (void)cache.on_execute(0);
  (void)cache.on_execute(1);
  EXPECT_DOUBLE_EQ(cache.used_mb(), 8.0);
  (void)cache.on_execute(2);  // evicts type 0 (oldest)
  EXPECT_FALSE(cache.is_warm(0));
  EXPECT_TRUE(cache.is_warm(1));
  EXPECT_TRUE(cache.is_warm(2));
}

TEST(ModelCache, LruKeepsRecentlyUsed) {
  ModelCache cache = two_slot_cache(EvictionPolicy::kLru);
  (void)cache.on_execute(0);
  (void)cache.on_execute(1);
  (void)cache.on_execute(0);  // touch: 0 becomes most recent
  (void)cache.on_execute(2);  // must evict 1, not 0
  EXPECT_TRUE(cache.is_warm(0));
  EXPECT_FALSE(cache.is_warm(1));
}

TEST(ModelCache, FifoIgnoresRecency) {
  ModelCache cache = two_slot_cache(EvictionPolicy::kFifo);
  (void)cache.on_execute(0);
  (void)cache.on_execute(1);
  (void)cache.on_execute(0);  // hit, but FIFO order unchanged
  (void)cache.on_execute(2);  // evicts 0 (oldest load)
  EXPECT_FALSE(cache.is_warm(0));
  EXPECT_TRUE(cache.is_warm(1));
}

TEST(ModelCache, NonePolicyAlwaysCold) {
  ModelCache cache = two_slot_cache(EvictionPolicy::kNone);
  EXPECT_DOUBLE_EQ(cache.on_execute(0), 2.0);
  EXPECT_DOUBLE_EQ(cache.on_execute(0), 2.0);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_FALSE(cache.is_warm(0));
}

TEST(ModelCache, OversizedModelNeverCached) {
  ModelCache cache(3.0, {4.0}, {1.5}, EvictionPolicy::kLru);
  EXPECT_DOUBLE_EQ(cache.on_execute(0), 1.5);
  EXPECT_DOUBLE_EQ(cache.on_execute(0), 1.5);  // still cold; does not fit
  EXPECT_FALSE(cache.is_warm(0));
  EXPECT_DOUBLE_EQ(cache.used_mb(), 0.0);
}

TEST(ModelCache, WarmTypesInEvictionOrder) {
  ModelCache cache = two_slot_cache();
  (void)cache.on_execute(1);
  (void)cache.on_execute(2);
  EXPECT_EQ(cache.warm_types(),
            (std::vector<e2c::hetero::TaskTypeId>{1, 2}));  // 1 is the next victim
}

TEST(ModelCache, Validation) {
  EXPECT_THROW(ModelCache(0.0, {1.0}, {0.0}, EvictionPolicy::kLru), e2c::InputError);
  EXPECT_THROW(ModelCache(8.0, {0.0}, {0.0}, EvictionPolicy::kLru), e2c::InputError);
  EXPECT_THROW(ModelCache(8.0, {1.0}, {-1.0}, EvictionPolicy::kLru), e2c::InputError);
  EXPECT_THROW(ModelCache(8.0, {1.0, 2.0}, {0.0}, EvictionPolicy::kLru), e2c::InputError);
  ModelCache cache = two_slot_cache();
  EXPECT_THROW((void)cache.on_execute(9), e2c::InputError);
}

TEST(ModelCache, ParsePolicyNames) {
  EXPECT_EQ(e2c::mem::parse_eviction_policy("LRU"), EvictionPolicy::kLru);
  EXPECT_EQ(e2c::mem::parse_eviction_policy("fifo"), EvictionPolicy::kFifo);
  EXPECT_THROW((void)e2c::mem::parse_eviction_policy("random"), e2c::InputError);
}

// --- simulation integration ------------------------------------------------

e2c::sched::SystemConfig memory_system(double capacity_mb) {
  EetMatrix eet({"T1", "T2"}, {"m0"}, {{3.0}, {4.0}});
  auto config = e2c::sched::make_default_system(std::move(eet));
  MemoryModel memory;
  memory.model_mb = {4.0, 4.0};
  memory.load_seconds = {2.0, 2.0};
  memory.machine_memory_mb = {capacity_mb};
  config.memory = memory;
  return config;
}

TaskDef make_task(std::uint64_t id, std::size_t type, double arrival) {
  TaskDef task;
  task.id = id;
  task.type = type;
  task.arrival = arrival;
  task.deadline = 1e9;
  return task;
}

TEST(MemorySimulation, ColdStartExtendsExecution) {
  auto config = memory_system(16.0);  // both models fit
  e2c::sched::Simulation simulation(config, e2c::sched::make_policy("FCFS"));
  simulation.load(Workload({make_task(0, 0, 0.0), make_task(1, 0, 0.0)}));
  simulation.run();
  // First T1: cold 3+2=5 s; second T1: warm 3 s -> completes at 8.
  EXPECT_DOUBLE_EQ(simulation.task_state().completion_time[0], 5.0);
  EXPECT_DOUBLE_EQ(simulation.task_state().completion_time[1], 8.0);
  ASSERT_NE(simulation.model_cache(0), nullptr);
  EXPECT_EQ(simulation.model_cache(0)->hits(), 1u);
}

TEST(MemorySimulation, ThrashingWhenMemoryTight) {
  // 4 MB capacity holds one model; alternating types thrash: every start
  // cold. Interleaved T1/T2 arrivals.
  auto config = memory_system(4.0);
  e2c::sched::Simulation simulation(config, e2c::sched::make_policy("FCFS"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 6; ++i) tasks.push_back(make_task(i, i % 2, 0.0));
  simulation.load(Workload(std::move(tasks)));
  simulation.run();
  ASSERT_NE(simulation.model_cache(0), nullptr);
  EXPECT_EQ(simulation.model_cache(0)->hits(), 0u);
  EXPECT_EQ(simulation.model_cache(0)->misses(), 6u);
}

TEST(MemorySimulation, NoMemoryModelMeansNoCache) {
  EetMatrix eet({"T1"}, {"m0"}, {{3.0}});
  auto config = e2c::sched::make_default_system(std::move(eet));
  e2c::sched::Simulation simulation(config, e2c::sched::make_policy("FCFS"));
  EXPECT_EQ(simulation.model_cache(0), nullptr);
}

TEST(MemorySimulation, ShapeValidated) {
  auto config = memory_system(8.0);
  config.memory->model_mb = {4.0};  // wrong: 2 task types
  EXPECT_THROW(e2c::sched::Simulation(config, e2c::sched::make_policy("FCFS")),
               e2c::InputError);
  config = memory_system(8.0);
  config.memory->machine_memory_mb = {};  // wrong: 1 machine type
  EXPECT_THROW(e2c::sched::Simulation(config, e2c::sched::make_policy("FCFS")),
               e2c::InputError);
}

TEST(MemorySimulation, LargerMemoryNeverHurtsCompletion) {
  // Tight deadlines; sweep capacity upward: completion is non-decreasing
  // (within one task of noise) because cold starts only shrink.
  auto completion_with = [&](double capacity) {
    auto config = memory_system(capacity);
    e2c::sched::Simulation simulation(config, e2c::sched::make_policy("FCFS"));
    std::vector<TaskDef> tasks;
    for (std::uint64_t i = 0; i < 12; ++i) {
      TaskDef task = make_task(i, i % 2, static_cast<double>(i) * 2.0);
      task.deadline = task.arrival + 9.0;
      tasks.push_back(task);
    }
    simulation.load(Workload(std::move(tasks)));
    simulation.run();
    return simulation.counters().completion_percent();
  };
  EXPECT_LE(completion_with(4.0), completion_with(8.0) + 1e-9);
}

}  // namespace
