// Unit tests for the EET heterogeneity model (hetero/eet_matrix.hpp).
#include "hetero/eet_matrix.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using e2c::hetero::EetMatrix;

EetMatrix sample_matrix() {
  return EetMatrix({"T1", "T2"}, {"cpu", "gpu", "fpga"},
                   {{4.0, 1.0, 2.0}, {3.0, 6.0, 1.5}});
}

TEST(EetMatrix, AccessorsAndNames) {
  const EetMatrix eet = sample_matrix();
  EXPECT_EQ(eet.task_type_count(), 2u);
  EXPECT_EQ(eet.machine_type_count(), 3u);
  EXPECT_DOUBLE_EQ(eet.eet(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(eet.eet(1, 2), 1.5);
  EXPECT_EQ(eet.task_type_name(1), "T2");
  EXPECT_EQ(eet.machine_type_name(0), "cpu");
  EXPECT_EQ(eet.task_type_index("T2"), 1u);
  EXPECT_EQ(eet.machine_type_index("fpga"), 2u);
  EXPECT_TRUE(eet.has_task_type("T1"));
  EXPECT_FALSE(eet.has_task_type("T9"));
}

TEST(EetMatrix, UnknownNamesThrow) {
  const EetMatrix eet = sample_matrix();
  EXPECT_THROW((void)eet.task_type_index("nope"), e2c::InputError);
  EXPECT_THROW((void)eet.machine_type_index("nope"), e2c::InputError);
  EXPECT_THROW((void)eet.eet(5, 0), e2c::InputError);
  EXPECT_THROW((void)eet.eet(0, 5), e2c::InputError);
}

TEST(EetMatrix, ValidationRejectsBadShapes) {
  EXPECT_THROW(EetMatrix({"T1"}, {"m1"}, {{1.0, 2.0}}), e2c::InputError);  // extra col
  EXPECT_THROW(EetMatrix({"T1", "T2"}, {"m1"}, {{1.0}}), e2c::InputError); // missing row
  EXPECT_THROW(EetMatrix({}, {"m1"}, {}), e2c::InputError);                // no tasks
  EXPECT_THROW(EetMatrix({"T1"}, {}, {{}}), e2c::InputError);              // no machines
}

TEST(EetMatrix, ValidationRejectsNonPositiveEntries) {
  EXPECT_THROW(EetMatrix({"T1"}, {"m1"}, {{0.0}}), e2c::InputError);
  EXPECT_THROW(EetMatrix({"T1"}, {"m1"}, {{-3.0}}), e2c::InputError);
}

TEST(EetMatrix, ValidationRejectsDuplicateNames) {
  EXPECT_THROW(EetMatrix({"T1", "T1"}, {"m1"}, {{1.0}, {2.0}}), e2c::InputError);
  EXPECT_THROW(EetMatrix({"T1"}, {"m1", "m1"}, {{1.0, 2.0}}), e2c::InputError);
}

TEST(EetMatrix, SetEetEditsInPlace) {
  EetMatrix eet = sample_matrix();
  eet.set_eet(0, 0, 9.5);
  EXPECT_DOUBLE_EQ(eet.eet(0, 0), 9.5);
  EXPECT_THROW(eet.set_eet(0, 0, 0.0), e2c::InputError);
  EXPECT_THROW(eet.set_eet(9, 0, 1.0), e2c::InputError);
}

TEST(EetMatrix, RowStatistics) {
  const EetMatrix eet = sample_matrix();
  EXPECT_NEAR(eet.row_mean(0), (4.0 + 1.0 + 2.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(eet.row_min(0), 1.0);
  EXPECT_DOUBLE_EQ(eet.row_min(1), 1.5);
}

TEST(EetMatrix, HomogeneousDetection) {
  const EetMatrix homog =
      EetMatrix::homogeneous({"T1", "T2"}, {"m1", "m2"}, {3.0, 5.0});
  EXPECT_TRUE(homog.is_homogeneous());
  EXPECT_TRUE(homog.is_consistent());
  EXPECT_FALSE(sample_matrix().is_homogeneous());
}

TEST(EetMatrix, ConsistencyDetection) {
  // Consistent: machine 2 always fastest, machine 1 always slowest.
  const EetMatrix consistent({"T1", "T2"}, {"m1", "m2"},
                             {{4.0, 2.0}, {8.0, 4.0}});
  EXPECT_TRUE(consistent.is_consistent());
  // Inconsistent: each machine wins for one task type (GPU vs FPGA style).
  EXPECT_FALSE(sample_matrix().is_consistent());
}

TEST(EetMatrix, CsvRoundTrip) {
  const EetMatrix original = sample_matrix();
  const EetMatrix parsed = EetMatrix::from_csv_text(original.to_csv_text());
  EXPECT_EQ(parsed.task_type_names(), original.task_type_names());
  EXPECT_EQ(parsed.machine_type_names(), original.machine_type_names());
  for (std::size_t r = 0; r < original.task_type_count(); ++r) {
    for (std::size_t c = 0; c < original.machine_type_count(); ++c) {
      EXPECT_NEAR(parsed.eet(r, c), original.eet(r, c), 1e-4);
    }
  }
}

TEST(EetMatrix, FromCsvTextParsesHeader) {
  const EetMatrix eet =
      EetMatrix::from_csv_text("task_type,m1,m2\nT1, 2.5 ,3\nT2,4,5.5\n");
  EXPECT_EQ(eet.machine_type_name(0), "m1");
  EXPECT_DOUBLE_EQ(eet.eet(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(eet.eet(1, 1), 5.5);
}

TEST(EetMatrix, FromCsvRejectsMalformed) {
  EXPECT_THROW((void)EetMatrix::from_csv_text(""), e2c::InputError);
  EXPECT_THROW((void)EetMatrix::from_csv_text("task_type,m1\n"), e2c::InputError);
  EXPECT_THROW((void)EetMatrix::from_csv_text("task_type,m1\nT1,abc\n"), e2c::InputError);
  EXPECT_THROW((void)EetMatrix::from_csv_text("task_type,m1\nT1,1,2\n"), e2c::InputError);
}

TEST(EetMatrix, SaveAndLoadFile) {
  const std::string path = testing::TempDir() + "/e2c_eet_test.csv";
  sample_matrix().save_csv(path);
  const EetMatrix loaded = EetMatrix::load_csv(path);
  EXPECT_DOUBLE_EQ(loaded.eet(1, 0), 3.0);
  std::remove(path.c_str());
}

TEST(EetMatrix, RandomConsistentGeneration) {
  e2c::util::Rng rng(5);
  const EetMatrix eet = EetMatrix::random({"T1", "T2", "T3"}, {"m1", "m2", "m3", "m4"},
                                          2.0, 10.0, 10.0, /*inconsistent=*/false, rng);
  EXPECT_TRUE(eet.is_consistent());
  EXPECT_FALSE(eet.is_homogeneous());
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_GT(eet.eet(r, c), 0.0);
  }
}

TEST(EetMatrix, RandomInconsistentGenerationUsuallyInconsistent) {
  // With 5x5 and wide ranges, per-cell machine weights almost surely break
  // consistency; assert over a few seeds to avoid flakiness.
  int inconsistent_count = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    e2c::util::Rng rng(seed);
    const EetMatrix eet =
        EetMatrix::random({"T1", "T2", "T3", "T4", "T5"}, {"m1", "m2", "m3", "m4", "m5"},
                          1.0, 20.0, 20.0, /*inconsistent=*/true, rng);
    if (!eet.is_consistent()) ++inconsistent_count;
  }
  EXPECT_GE(inconsistent_count, 4);
}

TEST(EetMatrix, RandomRejectsBadParameters) {
  e2c::util::Rng rng(1);
  EXPECT_THROW((void)EetMatrix::random({"T1"}, {"m1"}, 0.0, 2.0, 2.0, false, rng),
               e2c::InputError);
  EXPECT_THROW((void)EetMatrix::random({"T1"}, {"m1"}, 1.0, 0.5, 2.0, false, rng),
               e2c::InputError);
}

TEST(EetMatrix, HomogeneousRequiresOneTimePerType) {
  EXPECT_THROW((void)EetMatrix::homogeneous({"T1", "T2"}, {"m1"}, {1.0}), e2c::InputError);
}

}  // namespace
