// Unit tests for the elasticity substrate: machine power gating and the
// autoscaler (sched/simulation.hpp, machines/machine.hpp).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "machines/machine.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/error.hpp"
#include "workload/workload.hpp"

namespace {

using e2c::core::Engine;
using e2c::hetero::EetMatrix;
using e2c::hetero::MachineTypeSpec;
using e2c::machines::kUnboundedQueue;
using e2c::machines::Machine;
using e2c::sched::AutoscalerConfig;
using e2c::sched::Simulation;
using e2c::sched::SystemConfig;
using e2c::workload::TaskDef;
using e2c::workload::Workload;

TaskDef make_task(std::uint64_t id, double arrival, double deadline) {
  TaskDef task;
  task.id = id;
  task.type = 0;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

// ---- machine power gating ---------------------------------------------------

TEST(MachinePowerGating, OfflineRefusesWork) {
  Engine engine;
  Machine machine(engine, 0, "m", 0, MachineTypeSpec{"t", 10.0, 100.0}, kUnboundedQueue);
  EXPECT_TRUE(machine.online());
  machine.set_online(false, 0.0);
  EXPECT_FALSE(machine.online());
  EXPECT_FALSE(machine.has_queue_space());
}

TEST(MachinePowerGating, OnlineSecondsTracksIntervals) {
  Engine engine;
  Machine machine(engine, 0, "m", 0, MachineTypeSpec{"t", 10.0, 100.0}, kUnboundedQueue);
  machine.set_online(false, 4.0);   // online [0, 4)
  machine.set_online(true, 10.0);   // online [10, ...)
  EXPECT_DOUBLE_EQ(machine.online_seconds(12.0), 6.0);
  EXPECT_DOUBLE_EQ(machine.online_seconds(10.0), 4.0);
  machine.set_online(false, 15.0);  // closes [10, 15)
  EXPECT_DOUBLE_EQ(machine.online_seconds(20.0), 9.0);
}

TEST(MachinePowerGating, RedundantTogglesIgnored) {
  Engine engine;
  Machine machine(engine, 0, "m", 0, MachineTypeSpec{"t", 10.0, 100.0}, kUnboundedQueue);
  machine.set_online(true, 3.0);  // already online: no-op
  machine.set_online(false, 5.0);
  machine.set_online(false, 7.0);  // already offline: no-op
  EXPECT_DOUBLE_EQ(machine.online_seconds(10.0), 5.0);
}

TEST(MachinePowerGating, OfflineMachineDrawsNoIdlePower) {
  Engine engine;
  Machine machine(engine, 0, "m", 0, MachineTypeSpec{"t", 10.0, 100.0}, kUnboundedQueue);
  machine.set_online(false, 0.0);
  EXPECT_DOUBLE_EQ(machine.energy_joules(100.0), 0.0);
  machine.set_online(true, 50.0);
  EXPECT_DOUBLE_EQ(machine.energy_joules(100.0), 50.0 * 10.0);
}

// ---- autoscaled simulation ---------------------------------------------------

SystemConfig scaled_system(AutoscalerConfig scaler) {
  EetMatrix eet({"T1"}, {"m0", "m1", "m2"}, {{2.0, 2.0, 2.0}});
  SystemConfig config = e2c::sched::make_default_system(std::move(eet), 2);
  config.autoscaler = std::move(scaler);
  return config;
}

AutoscalerConfig default_scaler() {
  AutoscalerConfig scaler;
  scaler.enabled = true;
  scaler.interval = 1.0;
  scaler.queue_high = 3;
  scaler.queue_low = 0;
  scaler.boot_delay = 0.5;
  scaler.min_online = 1;
  scaler.initially_offline = {1, 2};
  return scaler;
}

TEST(Autoscaler, StartsWithConfiguredMachinesOffline) {
  Simulation simulation(scaled_system(default_scaler()), e2c::sched::make_policy("MM"));
  EXPECT_EQ(simulation.online_machine_count(), 1u);
  EXPECT_FALSE(simulation.machine(1).online());
}

TEST(Autoscaler, ScalesOutUnderBacklog) {
  Simulation simulation(scaled_system(default_scaler()), e2c::sched::make_policy("MM"));
  // A burst of simultaneous tasks overflows the single online machine.
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 12; ++i) tasks.push_back(make_task(i, 0.0, 60.0));
  simulation.load(Workload(std::move(tasks)));
  std::size_t max_online = 0;
  while (simulation.step()) {
    max_online = std::max(max_online, simulation.online_machine_count());
  }
  EXPECT_GT(max_online, 1u);
  EXPECT_EQ(simulation.counters().completed, 12u);
}

TEST(Autoscaler, ScalesInWhenIdle) {
  Simulation simulation(scaled_system(default_scaler()), e2c::sched::make_policy("MM"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 12; ++i) tasks.push_back(make_task(i, 0.0, 60.0));
  // A late straggler keeps the simulation alive long after the burst, giving
  // the autoscaler time to park the extra machines.
  tasks.push_back(make_task(99, 40.0, 100.0));
  simulation.load(Workload(std::move(tasks)));
  simulation.run();
  EXPECT_EQ(simulation.online_machine_count(), 1u);
  EXPECT_EQ(simulation.counters().completed, 13u);
}

TEST(Autoscaler, RespectsMinOnline) {
  auto scaler = default_scaler();
  scaler.min_online = 2;
  scaler.initially_offline = {2};
  Simulation simulation(scaled_system(scaler), e2c::sched::make_policy("MM"));
  simulation.load(Workload({make_task(0, 0.0, 60.0), make_task(1, 30.0, 90.0)}));
  simulation.run();
  EXPECT_GE(simulation.online_machine_count(), 2u);
}

TEST(Autoscaler, SavesEnergyOnSparseLoad) {
  // Sparse trickle of work: with the autoscaler only one machine stays
  // powered, so total energy drops well below the always-on system.
  auto build_tasks = [] {
    std::vector<TaskDef> tasks;
    for (std::uint64_t i = 0; i < 8; ++i) {
      tasks.push_back(make_task(i, static_cast<double>(i) * 10.0, 1e9));
    }
    return tasks;
  };
  Simulation scaled(scaled_system(default_scaler()), e2c::sched::make_policy("MM"));
  scaled.load(Workload(build_tasks()));
  scaled.run();

  SystemConfig always_on = scaled_system(AutoscalerConfig{});
  Simulation baseline(always_on, e2c::sched::make_policy("MM"));
  baseline.load(Workload(build_tasks()));
  baseline.run();

  EXPECT_EQ(scaled.counters().completed, 8u);
  EXPECT_EQ(baseline.counters().completed, 8u);
  // Two of three machines stay parked: the saving is their idle draw
  // (exactly 40% of the always-on bill in this scenario).
  EXPECT_LT(scaled.total_energy_joules(scaled.engine().now()),
            0.65 * baseline.total_energy_joules(baseline.engine().now()));
}

TEST(Autoscaler, ValidatesConfig) {
  auto scaler = default_scaler();
  scaler.interval = 0.0;
  EXPECT_THROW(Simulation(scaled_system(scaler), e2c::sched::make_policy("MM")),
               e2c::InputError);
  scaler = default_scaler();
  scaler.min_online = 0;
  EXPECT_THROW(Simulation(scaled_system(scaler), e2c::sched::make_policy("MM")),
               e2c::InputError);
  scaler = default_scaler();
  scaler.initially_offline = {7};
  EXPECT_THROW(Simulation(scaled_system(scaler), e2c::sched::make_policy("MM")),
               e2c::InputError);
  scaler = default_scaler();
  scaler.initially_offline = {0, 1, 2};  // nothing online but min_online=1
  EXPECT_THROW(Simulation(scaled_system(scaler), e2c::sched::make_policy("MM")),
               e2c::InputError);
}

TEST(Autoscaler, ScaleInWhileBootingKeepsCapacity) {
  // A long boot overlaps several autoscaler ticks that take the scale-in
  // branch. The booting machine counts toward min_online, and the headroom
  // rule keeps the last genuinely-online machine powered — so capacity never
  // drops to zero mid-boot, and the boot still completes and joins the pool.
  auto scaler = default_scaler();
  scaler.queue_high = 1;    // the burst triggers one scale-out immediately
  scaler.boot_delay = 10.0; // boot spans many idle ticks
  scaler.initially_offline = {1, 2};
  Simulation simulation(scaled_system(scaler), e2c::sched::make_policy("MM"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 4; ++i) tasks.push_back(make_task(i, 0.0, 60.0));
  // Straggler keeps the run alive long past the boot, through idle ticks.
  tasks.push_back(make_task(9, 25.0, 60.0));
  simulation.load(Workload(std::move(tasks)));
  std::size_t min_online = 99, max_online = 0;
  while (simulation.step()) {
    min_online = std::min(min_online, simulation.online_machine_count());
    max_online = std::max(max_online, simulation.online_machine_count());
  }
  EXPECT_GE(min_online, 1u);  // never powered off the only running machine
  EXPECT_EQ(max_online, 2u);  // the pending boot completed and joined
  EXPECT_EQ(simulation.online_machine_count(), 1u);  // idle extra parked again
  EXPECT_EQ(simulation.counters().completed, 5u);
}

TEST(Autoscaler, OfflineMachinesInvisibleToPolicies) {
  // With machines 1 and 2 offline and no backlog, all work lands on m0.
  auto scaler = default_scaler();
  scaler.queue_high = 100;  // never scale out
  Simulation simulation(scaled_system(scaler), e2c::sched::make_policy("MM"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 4; ++i) {
    tasks.push_back(make_task(i, static_cast<double>(i) * 3.0, 1e9));
  }
  simulation.load(Workload(std::move(tasks)));
  simulation.run();
  const auto horizon = simulation.engine().now();
  EXPECT_EQ(simulation.machine(0).finalize_stats(horizon).tasks_completed, 4u);
  EXPECT_EQ(simulation.machine(1).finalize_stats(horizon).tasks_completed, 0u);
}

}  // namespace
