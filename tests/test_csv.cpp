// Unit tests for the CSV parser/writer (util/csv.hpp).
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace {

using e2c::util::CsvTable;
using e2c::util::csv_escape;
using e2c::util::parse_csv;
using e2c::util::to_csv;

TEST(CsvParse, SimpleRows) {
  const CsvTable table = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvParse, MissingTrailingNewline) {
  const CsvTable table = parse_csv("a,b\n1,2");
  ASSERT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParse, CrLfLineEndings) {
  const CsvTable table = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvParse, BlankLinesSkipped) {
  const CsvTable table = parse_csv("a,b\n\n\n1,2\n\n");
  ASSERT_EQ(table.row_count(), 2u);
}

TEST(CsvParse, EmptyInput) {
  EXPECT_TRUE(parse_csv("").empty());
  EXPECT_TRUE(parse_csv("\n\n").empty());
}

TEST(CsvParse, QuotedFieldWithComma) {
  const CsvTable table = parse_csv("\"a,b\",c\n");
  ASSERT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvParse, QuotedFieldWithEscapedQuote) {
  const CsvTable table = parse_csv("\"say \"\"hi\"\"\",x\n");
  ASSERT_EQ(table.rows[0][0], "say \"hi\"");
}

TEST(CsvParse, QuotedFieldWithNewline) {
  const CsvTable table = parse_csv("\"line1\nline2\",x\n");
  ASSERT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.rows[0][0], "line1\nline2");
}

TEST(CsvParse, EmptyFieldsPreserved) {
  const CsvTable table = parse_csv("a,,c\n");
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW((void)parse_csv("\"oops\n"), e2c::InputError);
}

TEST(CsvEscape, PlainFieldUntouched) { EXPECT_EQ(csv_escape("hello"), "hello"); }

TEST(CsvEscape, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteDoubled) { EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\""); }

TEST(CsvEscape, NewlineQuoted) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvRoundTrip, SerializeThenParse) {
  const std::vector<std::vector<std::string>> rows{
      {"id", "name,with,commas", "note"},
      {"1", "plain", "multi\nline"},
      {"2", "quote\"inside", ""},
  };
  const CsvTable parsed = parse_csv(to_csv(rows));
  ASSERT_EQ(parsed.row_count(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) EXPECT_EQ(parsed.rows[r], rows[r]);
}

TEST(CsvParse, RowLinesTrackSourceLines) {
  // Blank lines and a multi-line quoted field shift later rows: loaders must
  // report the line a row *started* on, not its index in the table.
  const CsvTable table = parse_csv("a,b\n\n1,2\n\"x\ny\",3\n5,6\n");
  ASSERT_EQ(table.row_count(), 4u);
  EXPECT_EQ(table.row_lines,
            (std::vector<std::size_t>{1, 3, 4, 6}));
}

TEST(CsvParse, WhereNamesSourceFileOrLine) {
  const CsvTable in_memory = parse_csv("a\nb\n");
  EXPECT_EQ(in_memory.where(1), "line 2");
  const CsvTable from_path = parse_csv("a\nb\n", "traces/faults.csv");
  EXPECT_EQ(from_path.where(1), "traces/faults.csv:2");
}

TEST(CsvFile, ReadBackCarriesPathInLocators) {
  const std::string path = testing::TempDir() + "/e2c_csv_where.csv";
  e2c::util::write_csv_file(path, {{"h"}, {"v"}});
  const CsvTable table = e2c::util::read_csv_file(path);
  EXPECT_EQ(table.source, path);
  EXPECT_EQ(table.where(1), path + ":2");
  std::remove(path.c_str());
}

TEST(CsvFile, WriteAndReadBack) {
  const std::string path = testing::TempDir() + "/e2c_csv_test.csv";
  e2c::util::write_csv_file(path, {{"a", "b"}, {"1", "2"}});
  const CsvTable table = e2c::util::read_csv_file(path);
  ASSERT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"1", "2"}));
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW((void)e2c::util::read_csv_file("/nonexistent/nope.csv"), e2c::IoError);
}

TEST(CsvFile, UnwritablePathThrows) {
  EXPECT_THROW(e2c::util::write_csv_file("/nonexistent/dir/out.csv", {{"a"}}),
               e2c::IoError);
}

}  // namespace
