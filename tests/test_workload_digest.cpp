// Golden digests of generated workloads: generate_workload is a pure
// function of (EET, GeneratorConfig), and the experiment data plane relies
// on that — a trace generated once per (intensity, replication) is shared by
// every policy cell. These FNV-1a digests pin the exact traces for fixed
// seeds across intensities, so the share-once refactor (and any future
// generator edit) cannot silently change what experiments run. An
// intentional generator change must update the constants below.
#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "workload/generator.hpp"

namespace {

namespace exp = e2c::exp;
namespace workload = e2c::workload;
using workload::Intensity;

void fnv1a(std::uint64_t& hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFFu;
    hash *= 1099511628211ULL;
  }
}

std::uint64_t trace_digest(Intensity intensity, std::size_t replication) {
  const auto system = exp::heterogeneous_classroom();
  const auto machine_types = exp::machine_types_of(system);
  const workload::GeneratorConfig config = workload::config_for_intensity(
      system.eet, machine_types, intensity, /*duration=*/60.0,
      exp::workload_seed(/*base_seed=*/42, intensity, replication));
  const workload::Workload trace = workload::generate_workload(system.eet, config);

  std::uint64_t hash = 14695981039346656037ULL;
  fnv1a(hash, trace.size());
  for (const workload::TaskDef& def : trace.tasks()) {
    fnv1a(hash, def.id);
    fnv1a(hash, static_cast<std::uint64_t>(def.type));
    fnv1a(hash, std::bit_cast<std::uint64_t>(def.arrival));
    fnv1a(hash, std::bit_cast<std::uint64_t>(def.deadline));
  }
  return hash;
}

struct Golden {
  Intensity intensity;
  std::size_t replication;
  std::uint64_t digest;
};

TEST(WorkloadDigest, GeneratedTracesMatchGoldens) {
  const Golden goldens[] = {
      {Intensity::kLow, 0, 0x74b48b0f0db827ddULL},
      {Intensity::kLow, 1, 0xb9135e15140c8e8cULL},
      {Intensity::kMedium, 0, 0xff19a68aa9f21dfbULL},
      {Intensity::kMedium, 1, 0x4d7c0a7121aba1a5ULL},
      {Intensity::kHigh, 0, 0x3578c167a3e85554ULL},
      {Intensity::kHigh, 1, 0xec5183870d6fa8e5ULL},
  };
  for (const Golden& golden : goldens) {
    EXPECT_EQ(trace_digest(golden.intensity, golden.replication), golden.digest)
        << "intensity " << workload::intensity_name(golden.intensity)
        << " replication " << golden.replication << " digest 0x" << std::hex
        << trace_digest(golden.intensity, golden.replication);
  }
}

TEST(WorkloadDigest, DigestIsReproducibleWithinProcess) {
  EXPECT_EQ(trace_digest(Intensity::kHigh, 0), trace_digest(Intensity::kHigh, 0));
}

}  // namespace
