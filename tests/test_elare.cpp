// Unit tests for ELARE / FELARE (sched/elare.hpp).
#include "sched/elare.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::sched::ElarePolicy;
using e2c::sched::FelarePolicy;
using e2c::sched::MachineView;
using e2c::sched::SchedulingContext;
using e2c::test::queued_task;

// Two machines: m0 is slow-but-frugal (low busy watts), m1 fast-but-hungry.
EetMatrix eet() {
  return EetMatrix({"T1", "T2"}, {"frugal", "fast"}, {{8.0, 2.0}, {10.0, 3.0}});
}

SchedulingContext power_context(const std::vector<const e2c::workload::TaskDef*>& queue,
                                std::vector<double> ontime_rates = {}) {
  const static EetMatrix matrix = eet();
  std::vector<MachineView> machines(2);
  machines[0] = {0, 0, 0.0, e2c::sched::kUnlimitedSlots, 2.0, 10.0};   // frugal
  machines[1] = {1, 1, 0.0, e2c::sched::kUnlimitedSlots, 25.0, 250.0}; // fast
  return SchedulingContext(0.0, matrix, std::move(machines), queue,
                           std::move(ontime_rates));
}

TEST(Elare, NameAndMode) {
  EXPECT_EQ(ElarePolicy{}.name(), "ELARE");
  EXPECT_EQ(ElarePolicy{}.mode(), e2c::sched::PolicyMode::kBatch);
  EXPECT_EQ(FelarePolicy{}.name(), "FELARE");
}

TEST(Elare, RejectsBadWeight) {
  EXPECT_THROW(ElarePolicy{-0.1}, e2c::InputError);
  EXPECT_THROW(ElarePolicy{1.1}, e2c::InputError);
}

TEST(Elare, PureLatencyWeightMatchesMinCompletion) {
  // energy_weight = 0: ELARE reduces to completion-time minimization.
  const auto task = queued_task(1, 0, /*deadline=*/100.0);
  auto context = power_context({&task});
  ElarePolicy policy(/*energy_weight=*/0.0);
  const auto assignments = policy.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 1u);  // fast machine: 2 < 8
}

TEST(Elare, PureEnergyWeightPicksFrugalMachine) {
  // T1: frugal 8s*10W = 80 J vs fast 2s*250W = 500 J.
  const auto task = queued_task(1, 0, /*deadline=*/100.0);
  auto context = power_context({&task});
  ElarePolicy policy(/*energy_weight=*/1.0);
  const auto assignments = policy.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 0u);
}

TEST(Elare, DefersInfeasibleTasks) {
  // Deadline 1.0: no machine completes T1 in time -> deferred (unmapped),
  // the pruning behaviour of the FELARE line of work.
  const auto task = queued_task(1, 0, /*deadline=*/1.0);
  auto context = power_context({&task});
  EXPECT_TRUE(ElarePolicy{}.schedule(context).empty());
}

TEST(Elare, SkipsInfeasibleMachineOnly) {
  // Deadline 3.0: only the fast machine (completion 2) is feasible, even at
  // full energy weight.
  const auto task = queued_task(1, 0, /*deadline=*/3.0);
  auto context = power_context({&task});
  ElarePolicy policy(/*energy_weight=*/1.0);
  const auto assignments = policy.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 1u);
}

TEST(Elare, MapsAllFeasibleTasks) {
  const auto t1 = queued_task(1, 0, 100.0);
  const auto t2 = queued_task(2, 1, 100.0);
  const auto t3 = queued_task(3, 0, 0.5);  // infeasible
  auto context = power_context({&t1, &t2, &t3});
  const auto assignments = ElarePolicy{}.schedule(context);
  EXPECT_EQ(assignments.size(), 2u);
  for (const auto& assignment : assignments) EXPECT_NE(assignment.task, 3u);
}

TEST(Felare, SufferingTypeMapsFirst) {
  // Type 1 has a poor on-time record (0.2) vs type 0 (1.0): FELARE should
  // pull the type-1 task forward even though type 0 completes sooner.
  const auto t0 = queued_task(1, 0, 100.0);  // best completion 2 (fast)
  const auto t1 = queued_task(2, 1, 100.0);  // best completion 3 (fast)
  auto context = power_context({&t0, &t1}, /*ontime=*/{1.0, 0.2});
  const auto assignments = FelarePolicy{/*energy_weight=*/0.0}.schedule(context);
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, 2u);
}

TEST(Felare, EqualRatesBehaveLikeElare) {
  const auto t0 = queued_task(1, 0, 100.0);
  const auto t1 = queued_task(2, 1, 100.0);
  auto felare_ctx = power_context({&t0, &t1}, {1.0, 1.0});
  auto elare_ctx = power_context({&t0, &t1}, {1.0, 1.0});
  const auto felare = FelarePolicy{0.5}.schedule(felare_ctx);
  const auto elare = ElarePolicy{0.5}.schedule(elare_ctx);
  ASSERT_EQ(felare.size(), elare.size());
  for (std::size_t i = 0; i < felare.size(); ++i) {
    EXPECT_EQ(felare[i].task, elare[i].task);
    EXPECT_EQ(felare[i].machine, elare[i].machine);
  }
}

}  // namespace
