// Unit tests for reports and metrics (reports/report.hpp, reports/metrics.hpp).
#include "reports/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "reports/metrics.hpp"
#include "sched/registry.hpp"
#include "util/csv.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::reports::compute_metrics;
using e2c::reports::Metrics;
using e2c::sched::Simulation;
using e2c::workload::TaskDef;
using e2c::workload::Workload;

TaskDef make_task(std::uint64_t id, std::size_t type, double arrival, double deadline) {
  TaskDef task;
  task.id = id;
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

// A small finished simulation shared by the report tests: 2 machines,
// 3 tasks, one of which misses its deadline.
class ReportsTest : public testing::Test {
 protected:
  void SetUp() override {
    EetMatrix eet({"T1", "T2"}, {"m0", "m1"}, {{4.0, 6.0}, {5.0, 2.0}});
    simulation_ = std::make_unique<Simulation>(
        e2c::sched::make_default_system(std::move(eet)), e2c::sched::make_policy("MECT"));
    simulation_->load(Workload({
        make_task(0, 0, 0.0, 100.0),  // completes on m0 at 4
        make_task(1, 1, 0.0, 100.0),  // completes on m1 at 2
        make_task(2, 0, 0.0, 3.0),    // dropped (m1 at 0+6 or m0 4+4)
    }));
    simulation_->run();
  }
  std::unique_ptr<Simulation> simulation_;
};

TEST_F(ReportsTest, MetricsHeadlineNumbers) {
  const Metrics metrics = compute_metrics(*simulation_);
  EXPECT_EQ(metrics.total_tasks, 3u);
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.cancelled + metrics.dropped, 1u);
  EXPECT_NEAR(metrics.completion_percent, 200.0 / 3.0, 1e-9);
  EXPECT_NEAR(metrics.completion_percent + metrics.cancelled_percent +
                  metrics.dropped_percent,
              100.0, 1e-9);
  EXPECT_DOUBLE_EQ(metrics.makespan, 4.0);
  EXPECT_GT(metrics.total_energy_joules, 0.0);
  EXPECT_GT(metrics.energy_per_completed_task, 0.0);
  ASSERT_EQ(metrics.machine_utilization.size(), 2u);
  ASSERT_EQ(metrics.type_completion_rate.size(), 2u);
  EXPECT_LE(metrics.type_fairness_jain, 1.0);
  EXPECT_GT(metrics.type_fairness_jain, 0.0);
}

TEST_F(ReportsTest, TaskReportShape) {
  const auto rows = e2c::reports::task_report(*simulation_);
  ASSERT_EQ(rows.size(), 4u);  // header + 3 tasks
  EXPECT_EQ(rows[0][0], "task_id");
  EXPECT_EQ(rows[1][0], "0");
  EXPECT_EQ(rows[1][2], "completed");
  // Every data row has the same number of fields as the header.
  for (const auto& row : rows) EXPECT_EQ(row.size(), rows[0].size());
}

TEST_F(ReportsTest, MachineReportShape) {
  const auto rows = e2c::reports::machine_report(*simulation_);
  ASSERT_EQ(rows.size(), 3u);  // header + 2 machines
  EXPECT_EQ(rows[0][0], "machine");
  EXPECT_EQ(rows[1][0], "m0");
  EXPECT_EQ(rows[2][0], "m1");
}

TEST_F(ReportsTest, SummaryReportContainsPolicyAndCounts) {
  const auto rows = e2c::reports::summary_report(*simulation_);
  bool saw_policy = false;
  bool saw_completion = false;
  for (const auto& row : rows) {
    if (row[0] == "policy") {
      saw_policy = true;
      EXPECT_EQ(row[1], "MECT");
    }
    if (row[0] == "completion_percent") {
      saw_completion = true;
      EXPECT_EQ(row[1], "66.67");
    }
  }
  EXPECT_TRUE(saw_policy);
  EXPECT_TRUE(saw_completion);
}

TEST_F(ReportsTest, FullReportExtendsTaskReportWithEet) {
  const auto task_rows = e2c::reports::task_report(*simulation_);
  const auto full_rows = e2c::reports::full_report(*simulation_);
  ASSERT_EQ(full_rows.size(), task_rows.size());
  EXPECT_EQ(full_rows[0].size(), task_rows[0].size() + 2);  // + eet_m0, eet_m1
  EXPECT_EQ(full_rows[0].back(), "eet_m1");
  EXPECT_EQ(full_rows[1].back(), "6.00");  // T1 on m1
}

TEST_F(ReportsTest, MissedReportListsOnlyMissed) {
  const auto rows = e2c::reports::missed_report(*simulation_);
  ASSERT_EQ(rows.size(), 2u);  // header + 1 missed
  EXPECT_EQ(rows[1][0], "2");
}

TEST_F(ReportsTest, BuildReportDispatch) {
  for (const auto kind :
       {e2c::reports::ReportKind::kTask, e2c::reports::ReportKind::kMachine,
        e2c::reports::ReportKind::kSummary, e2c::reports::ReportKind::kFull,
        e2c::reports::ReportKind::kMissed}) {
    const auto rows = e2c::reports::build_report(*simulation_, kind);
    EXPECT_GE(rows.size(), 1u) << e2c::reports::report_kind_name(kind);
  }
}

TEST_F(ReportsTest, SaveReportWritesParsableCsv) {
  const std::string path = testing::TempDir() + "/e2c_report_test.csv";
  e2c::reports::save_report_csv(*simulation_, e2c::reports::ReportKind::kTask, path);
  const auto parsed = e2c::util::read_csv_file(path);
  EXPECT_EQ(parsed.row_count(), 4u);
  std::remove(path.c_str());
}

TEST(MetricsEdge, EmptyWorkloadIsAllZeros) {
  EetMatrix eet({"T1"}, {"m0"}, {{1.0}});
  Simulation simulation(e2c::sched::make_default_system(std::move(eet)),
                        e2c::sched::make_policy("FCFS"));
  simulation.load(Workload(std::vector<TaskDef>{}));
  simulation.run();
  const Metrics metrics = compute_metrics(simulation);
  EXPECT_EQ(metrics.total_tasks, 0u);
  EXPECT_DOUBLE_EQ(metrics.completion_percent, 0.0);
  EXPECT_DOUBLE_EQ(metrics.makespan, 0.0);
  EXPECT_DOUBLE_EQ(metrics.energy_per_completed_task, 0.0);
}

}  // namespace
