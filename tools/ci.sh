#!/usr/bin/env bash
# Sanitizer CI sweep: builds the tree in Debug with the requested
# sanitizer(s) and runs ctest under each. Any sanitizer report fails the run.
#
# Usage: tools/ci.sh [suite ...]
#   suites: asan | ubsan | tsan | bench   (default: the three sanitizers)
#   E2C_BUILD_ROOT overrides the build root (default: <repo>/build-san)
#
# The bench suite is a smoke test, not a performance gate: it builds Release,
# runs the core hot-path benchmark at 10k tasks and validates that the JSON
# artifact contains the expected keys — catching bitrot in the bench harness
# without making CI timing-sensitive.
#
# The tsan suite runs only the threaded tests (thread pool and the parallel
# substrate-combo sweep) — the rest of the suite is single-threaded by design
# and would only slow the job down.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${E2C_BUILD_ROOT:-${ROOT}/build-san}"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_bench_smoke() {
  local dir="${BUILD_ROOT}/bench"
  local out="${dir}/BENCH_core_hotpath.json"
  echo "=== bench: configure (Release) ==="
  cmake -S "${ROOT}" -B "${dir}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "=== bench: build ==="
  cmake --build "${dir}" --target bench_core_hotpath -j "${JOBS}"
  echo "=== bench: run (10k tasks) ==="
  "${dir}/bench/bench_core_hotpath" --sizes 10000 --out "${out}"
  echo "=== bench: validate JSON keys ==="
  for key in bench results policy mode tasks_requested tasks events seconds \
             events_per_sec ns_per_event completion_percent; do
    grep -q "\"${key}\"" "${out}" || {
      echo "bench smoke: key '${key}' missing from ${out}" >&2
      exit 1
    }
  done
  echo "bench smoke passed"
}

run_suite() {
  local name="$1" sanitize="$2" filter="${3:-}"
  local dir="${BUILD_ROOT}/${name}"
  echo "=== ${name}: configure (${sanitize}) ==="
  cmake -S "${ROOT}" -B "${dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DE2C_SANITIZE="${sanitize}" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  if [ -n "${filter}" ]; then
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" -R "${filter}")
  else
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  fi
}

# halt_on_error makes sanitizer findings fail tests instead of just logging.
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

suites=("$@")
if [ ${#suites[@]} -eq 0 ]; then
  suites=(asan ubsan tsan)
fi

for suite in "${suites[@]}"; do
  case "${suite}" in
    asan)  run_suite asan address ;;
    ubsan) run_suite ubsan undefined ;;
    tsan)  run_suite tsan thread 'test_thread_pool|test_substrate_combos' ;;
    bench) run_bench_smoke ;;
    *) echo "unknown suite '${suite}' (asan | ubsan | tsan | bench)" >&2; exit 2 ;;
  esac
done

echo "sanitizer sweep passed"
