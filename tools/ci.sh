#!/usr/bin/env bash
# Sanitizer CI sweep: builds the tree in Debug with ASan and (separately)
# UBSan, and runs the tier-1 ctest suite under each. Any sanitizer report
# fails the run. Usage: tools/ci.sh [build-root]  (default: build-san)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${1:-${ROOT}/build-san}"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local name="$1" sanitize="$2"
  local dir="${BUILD_ROOT}/${name}"
  echo "=== ${name}: configure (${sanitize}) ==="
  cmake -S "${ROOT}" -B "${dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DE2C_SANITIZE="${sanitize}" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

# halt_on_error makes UBSan findings fail tests instead of just logging.
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

run_suite asan address
run_suite ubsan undefined

echo "sanitizer sweep passed"
