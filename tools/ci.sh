#!/usr/bin/env bash
# Sanitizer CI sweep: builds the tree in Debug with the requested
# sanitizer(s) and runs ctest under each. Any sanitizer report fails the run.
#
# Usage: tools/ci.sh [suite ...]
#   suites: asan | ubsan | tsan | bench | crash | serve
#   (default: the three sanitizers)
#   E2C_BUILD_ROOT overrides the build root (default: <repo>/build-san)
#
# The bench suite is a smoke test plus relative gates: it builds Release,
# runs the core hot-path benchmark at 10k tasks and the scheduler hot-path
# benchmark at reduced depths, validates that the JSON artifacts contain the
# expected keys, and fails if the fresh fast/reference scheduler speedup drops
# below 70% of the committed BENCH_sched_hotpath.json baseline for MM or
# ELARE. The experiment-throughput bench is gated the same way on its
# shared/per-run plane speedup and on its 4-worker parallel efficiency
# (speedup normalized by min(4, cpus)). Speedup ratios compare two
# configurations on the *same* machine, so the gates are meaningful on any
# runner; absolute rounds/s are never compared.
#
# The crash suite is a fault-injection smoke test of the process backend: it
# runs the same sweep on the threads backend (golden) and on --backend procs
# while kill -9'ing one worker process mid-cell, then asserts the result CSV
# is byte-identical to the golden run and the sweep journal is valid — the
# supervisor must detect the crash, requeue the cell, and keep going.
#
# The serve suite is an end-to-end smoke test of the resident sweep service:
# it starts `e2c_experiment --serve`, submits two overlapping sweeps while
# kill -9'ing one warm worker mid-job, and asserts both clients' CSVs are
# byte-identical to a direct run, the per-job journals are complete, and
# SIGTERM drains the service with exit 0.
#
# The tsan suite runs only the threaded tests (thread pool and the parallel
# substrate-combo sweep) plus the I/O-contention suite, whose event
# re-stamping is the kind of shared-state churn tsan instruments well — the
# rest of the suite is single-threaded by design and would only slow the job
# down.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${E2C_BUILD_ROOT:-${ROOT}/build-san}"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_bench_smoke() {
  local dir="${BUILD_ROOT}/bench"
  local out="${dir}/BENCH_core_hotpath.json"
  echo "=== bench: configure (Release) ==="
  cmake -S "${ROOT}" -B "${dir}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "=== bench: build ==="
  cmake --build "${dir}" --target bench_core_hotpath -j "${JOBS}"
  echo "=== bench: run (10k tasks) ==="
  "${dir}/bench/bench_core_hotpath" --sizes 10000 --out "${out}"
  echo "=== bench: validate JSON keys ==="
  for key in bench results policy mode tasks_requested tasks events seconds \
             events_per_sec ns_per_event completion_percent; do
    grep -q "\"${key}\"" "${out}" || {
      echo "bench smoke: key '${key}' missing from ${out}" >&2
      exit 1
    }
  done

  local sched_out="${dir}/BENCH_sched_hotpath.json"
  local baseline="${ROOT}/BENCH_sched_hotpath.json"
  echo "=== bench: build scheduler hot path ==="
  cmake --build "${dir}" --target bench_sched_hotpath -j "${JOBS}"
  echo "=== bench: run scheduler hot path (depth 1000) ==="
  "${dir}/bench/bench_sched_hotpath" --depths 1000 --out "${sched_out}"
  echo "=== bench: validate scheduler JSON keys ==="
  for key in bench schedule_results impl depth invocations rounds assignments \
             rounds_per_sec invocations_per_sec speedups speedup end_to_end \
             scheduler_invocations; do
    grep -q "\"${key}\"" "${sched_out}" || {
      echo "bench smoke: key '${key}' missing from ${sched_out}" >&2
      exit 1
    }
  done
  echo "=== bench: fast/reference speedup regression gate ==="
  # The committed baseline records the speedup at each depth; a fresh run on
  # this machine must stay within 70% of the baseline ratio for the two
  # policies the PR acceptance pinned (MM and ELARE).
  speedup_of() {  # file policy depth
    sed -n "s/.*{\"policy\": \"$2\", \"depth\": $3, \"speedup\": \([0-9.eE+-]*\)}.*/\1/p" "$1"
  }
  for policy in MM ELARE; do
    fresh="$(speedup_of "${sched_out}" "${policy}" 1000)"
    base="$(speedup_of "${baseline}" "${policy}" 1000)"
    if [ -z "${fresh}" ] || [ -z "${base}" ]; then
      echo "bench smoke: missing ${policy} depth-1000 speedup (fresh='${fresh}' baseline='${base}')" >&2
      exit 1
    fi
    awk -v fresh="${fresh}" -v base="${base}" 'BEGIN { exit !(fresh >= 0.7 * base) }' || {
      echo "bench smoke: ${policy} speedup regressed: ${fresh}x vs baseline ${base}x (floor 70%)" >&2
      exit 1
    }
    echo "${policy}: speedup ${fresh}x (baseline ${base}x) ok"
  done

  local exp_out="${dir}/BENCH_experiment_throughput.json"
  local exp_baseline="${ROOT}/BENCH_experiment_throughput.json"
  echo "=== bench: build experiment throughput ==="
  cmake --build "${dir}" --target bench_experiment_throughput -j "${JOBS}"
  echo "=== bench: run experiment throughput (full default sweep) ==="
  # Full default shape (matches the committed baseline): the 1-worker run
  # takes >= 250 ms, so the scaling curve is not noise-dominated.
  "${dir}/bench/bench_experiment_throughput" --out "${exp_out}"
  echo "=== bench: validate experiment JSON keys ==="
  for key in bench sweep plane_results plane workers seconds \
             replications_per_sec plane_speedup cpus worker_scaling speedup \
             scaling_speedup_4w parallel_efficiency_4w peak_rss_kb; do
    grep -q "\"${key}\"" "${exp_out}" || {
      echo "bench smoke: key '${key}' missing from ${exp_out}" >&2
      exit 1
    }
  done
  echo "=== bench: shared/per-run plane speedup regression gate ==="
  # The shared-vs-per-run ratio is machine-independent (both planes run on
  # this host); a fresh run must stay within 70% of the committed baseline.
  plane_speedup_of() {  # file
    sed -n 's/.*"plane_speedup": \([0-9.eE+-]*\).*/\1/p' "$1"
  }
  fresh="$(plane_speedup_of "${exp_out}")"
  base="$(plane_speedup_of "${exp_baseline}")"
  if [ -z "${fresh}" ] || [ -z "${base}" ]; then
    echo "bench smoke: missing plane_speedup (fresh='${fresh}' baseline='${base}')" >&2
    exit 1
  fi
  awk -v fresh="${fresh}" -v base="${base}" 'BEGIN { exit !(fresh >= 0.7 * base) }' || {
    echo "bench smoke: plane speedup regressed: ${fresh}x vs baseline ${base}x (floor 70%)" >&2
    exit 1
  }
  echo "experiment data plane: speedup ${fresh}x (baseline ${base}x) ok"

  echo "=== bench: worker-scaling efficiency gate (4 workers) ==="
  # parallel_efficiency_4w = (reps/s at 4 workers / reps/s at 1 worker),
  # normalized by min(4, hardware cpus) — the fraction of the parallelism
  # this host can physically offer that the sharded plane actually delivers.
  # The normalization makes the ratio machine-independent: a 1-cpu container
  # is gated on "4 workers must not be slower than 1", a >=4-core runner on
  # real >=2.8x scaling (70% of ideal). Gated as a ratio vs the committed
  # baseline like the other bench gates.
  efficiency_of() {  # file
    sed -n 's/.*"parallel_efficiency_4w": \([0-9.eE+-]*\).*/\1/p' "$1"
  }
  fresh="$(efficiency_of "${exp_out}")"
  base="$(efficiency_of "${exp_baseline}")"
  if [ -z "${fresh}" ] || [ -z "${base}" ]; then
    echo "bench smoke: missing parallel_efficiency_4w (fresh='${fresh}' baseline='${base}')" >&2
    exit 1
  fi
  awk -v fresh="${fresh}" -v base="${base}" 'BEGIN { exit !(fresh >= 0.7 * base) }' || {
    echo "bench smoke: worker-scaling efficiency regressed: ${fresh} vs baseline ${base} (floor 70%)" >&2
    exit 1
  }
  echo "worker scaling: 4-worker parallel efficiency ${fresh} (baseline ${base}) ok"

  local waste_out="${dir}/BENCH_recovery_waste.json"
  local waste_baseline="${ROOT}/BENCH_recovery_waste.json"
  echo "=== bench: build recovery waste ==="
  cmake --build "${dir}" --target bench_recovery_waste -j "${JOBS}"
  echo "=== bench: run recovery waste + interference sweep ==="
  "${dir}/bench/bench_recovery_waste" --out "${waste_out}"
  echo "=== bench: validate recovery-waste JSON keys ==="
  for key in bench interference cells waste_ratios tenants bandwidth strategy \
             lost_s overhead_s waste_s waste_ratio; do
    grep -q "\"${key}\"" "${waste_out}" || {
      echo "bench smoke: key '${key}' missing from ${waste_out}" >&2
      exit 1
    }
  done
  echo "=== bench: cooperative/selfish waste-ratio regression gate ==="
  # waste_ratio = selfish waste / cooperative waste at the saturating corner
  # (tenants=4, bandwidth=2). Both runs happen on this host within one
  # deterministic simulation, so the ratio is machine-independent; a fresh
  # run must stay within 70% of the committed baseline.
  waste_ratio_of() {  # file tenants bandwidth
    sed -n "s/.*{\"tenants\": $2, \"bandwidth\": $3, \"waste_ratio\": \([0-9.eE+-]*\)}.*/\1/p" "$1"
  }
  fresh="$(waste_ratio_of "${waste_out}" 4 2.0)"
  base="$(waste_ratio_of "${waste_baseline}" 4 2.0)"
  if [ -z "${fresh}" ] || [ -z "${base}" ]; then
    echo "bench smoke: missing tenants=4 bandwidth=2.0 waste_ratio (fresh='${fresh}' baseline='${base}')" >&2
    exit 1
  fi
  awk -v fresh="${fresh}" -v base="${base}" 'BEGIN { exit !(fresh >= 0.7 * base) }' || {
    echo "bench smoke: cooperative waste advantage regressed: ${fresh} vs baseline ${base} (floor 70%)" >&2
    exit 1
  }
  echo "io interference: waste_ratio ${fresh} (baseline ${base}) ok"

  local mega_out="${dir}/BENCH_megarun.json"
  local mega_baseline="${ROOT}/BENCH_megarun.json"
  echo "=== bench: build megarun ==="
  cmake --build "${dir}" --target bench_megarun -j "${JOBS}"
  echo "=== bench: run megarun (10M tasks, MM + ELARE) ==="
  "${dir}/bench/bench_megarun" --out "${mega_out}"
  echo "=== bench: validate megarun JSON keys ==="
  for key in bench results policy lane tasks events seconds events_per_sec \
             ns_per_event completion_percent peak_rss_kb rss_delta_kb \
             scaling scaling_ratio; do
    grep -q "\"${key}\"" "${mega_out}" || {
      echo "bench smoke: key '${key}' missing from ${mega_out}" >&2
      exit 1
    }
  done
  echo "=== bench: megarun scaling-ratio regression gate ==="
  # scaling_ratio = mega events/s over same-host calibration events/s: the
  # SoA core's throughput retention when the task table is 100x larger than
  # cache. Both runs happen on this host, so the ratio is machine-independent;
  # a fresh run must stay within 70% of the committed baseline.
  scaling_ratio_of() {  # file policy
    sed -n "s/.*{\"policy\": \"$2\", \"scaling_ratio\": \([0-9.eE+-]*\)}.*/\1/p" "$1"
  }
  for policy in MM ELARE; do
    fresh="$(scaling_ratio_of "${mega_out}" "${policy}")"
    base="$(scaling_ratio_of "${mega_baseline}" "${policy}")"
    if [ -z "${fresh}" ] || [ -z "${base}" ]; then
      echo "bench smoke: missing ${policy} scaling_ratio (fresh='${fresh}' baseline='${base}')" >&2
      exit 1
    fi
    awk -v fresh="${fresh}" -v base="${base}" 'BEGIN { exit !(fresh >= 0.7 * base) }' || {
      echo "bench smoke: ${policy} megarun throughput retention regressed: ${fresh} vs baseline ${base} (floor 70%)" >&2
      exit 1
    }
    echo "${policy}: megarun scaling ratio ${fresh} (baseline ${base}) ok"
  done

  local serve_out="${dir}/BENCH_serve.json"
  local serve_baseline="${ROOT}/BENCH_serve.json"
  echo "=== bench: build resident-service throughput ==="
  cmake --build "${dir}" --target bench_serve -j "${JOBS}"
  echo "=== bench: run resident-service throughput (12 jobs per lane) ==="
  "${dir}/bench/bench_serve" --jobs 12 --out "${serve_out}"
  echo "=== bench: validate serve JSON keys ==="
  for key in bench jobs workers distinct_configs results lane seconds \
             jobs_per_sec p50_ms p99_ms speedup; do
    grep -q "\"${key}\"" "${serve_out}" || {
      echo "bench smoke: key '${key}' missing from ${serve_out}" >&2
      exit 1
    }
  done
  echo "=== bench: serve/spawn speedup regression gate ==="
  # speedup = warm-service jobs/s over spawn-per-sweep jobs/s for the same
  # job stream. Both lanes run on this host, so the ratio is
  # machine-independent; a fresh run must stay within 70% of the committed
  # baseline.
  serve_speedup_of() {  # file
    sed -n 's/.*"speedup": \([0-9.eE+-]*\).*/\1/p' "$1"
  }
  fresh="$(serve_speedup_of "${serve_out}")"
  base="$(serve_speedup_of "${serve_baseline}")"
  if [ -z "${fresh}" ] || [ -z "${base}" ]; then
    echo "bench smoke: missing serve speedup (fresh='${fresh}' baseline='${base}')" >&2
    exit 1
  fi
  awk -v fresh="${fresh}" -v base="${base}" 'BEGIN { exit !(fresh >= 0.7 * base) }' || {
    echo "bench smoke: serve/spawn speedup regressed: ${fresh}x vs baseline ${base}x (floor 70%)" >&2
    exit 1
  }
  echo "resident service: serve/spawn speedup ${fresh}x (baseline ${base}x) ok"

  echo "=== bench: PGO lane (profile-generate -> profile-use) ==="
  # Two-phase profile-guided build of the megarun: train on a 200k-task run,
  # then flip the SAME build tree to -fprofile-use and rebuild. In-place is
  # load-bearing, not a space saving: gcov data files are keyed by the
  # mangled object path of the generating compile, so a separate
  # profile-use tree looks for gcda names it can never find and
  # -Wno-missing-profile silently yields a no-PGO binary. The delta is
  # informational (reported in the bench summary, not gated) — PGO headroom
  # varies by compiler.
  local pg_use="${BUILD_ROOT}/build-pg"
  local profdir="${BUILD_ROOT}/pg-profiles"
  mkdir -p "${profdir}"
  cmake -S "${ROOT}" -B "${pg_use}" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-fprofile-generate=${profdir}" \
    -DCMAKE_EXE_LINKER_FLAGS="-fprofile-generate=${profdir}" >/dev/null
  cmake --build "${pg_use}" --target bench_megarun -j "${JOBS}"
  "${pg_use}/bench/bench_megarun" --tasks 200000 --out "${pg_use}/train.json" >/dev/null
  cmake -S "${ROOT}" -B "${pg_use}" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-fprofile-use=${profdir} -fprofile-correction -Wno-missing-profile" \
    -DCMAKE_EXE_LINKER_FLAGS="-fprofile-use=${profdir}" >/dev/null
  cmake --build "${pg_use}" --target bench_megarun -j "${JOBS}"
  "${dir}/bench/bench_megarun" --tasks 1000000 --out "${dir}/megarun_plain_1m.json" >/dev/null
  "${pg_use}/bench/bench_megarun" --tasks 1000000 --out "${pg_use}/megarun_pgo_1m.json" >/dev/null
  mega_events_of() {  # file policy
    sed -n "s/.*\"policy\": \"$2\", \"lane\": \"mega\".*\"events_per_sec\": \([0-9.eE+-]*\),.*/\1/p" "$1"
  }
  for policy in MM ELARE; do
    plain="$(mega_events_of "${dir}/megarun_plain_1m.json" "${policy}")"
    pgo="$(mega_events_of "${pg_use}/megarun_pgo_1m.json" "${policy}")"
    if [ -n "${plain}" ] && [ -n "${pgo}" ]; then
      delta="$(awk -v p="${plain}" -v g="${pgo}" 'BEGIN { printf "%.3f", g / p }')"
      echo "${policy}: PGO delta ${delta}x (plain ${plain} ev/s, pgo ${pgo} ev/s)"
    else
      echo "${policy}: PGO delta unavailable (plain='${plain}' pgo='${pgo}')"
    fi
  done
  echo "bench smoke passed"
}

run_crash_smoke() {
  local dir="${BUILD_ROOT}/crash"
  local work="${dir}/smoke"
  echo "=== crash: configure (Release) ==="
  cmake -S "${ROOT}" -B "${dir}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "=== crash: build e2c_experiment ==="
  cmake --build "${dir}" --target e2c_experiment -j "${JOBS}"
  mkdir -p "${work}"
  cat > "${work}/sweep.ini" <<INI
[sweep]
policies = FCFS, MECT
intensities = low, high
replications = 3
duration = 60
seed = 7

[output]
csv = ${work}/RESULTS.csv
INI

  echo "=== crash: golden run (threads backend) ==="
  "${dir}/src/cli/e2c_experiment" "${work}/sweep.ini" 2 > "${work}/golden.out"
  mv "${work}/RESULTS.csv" "${work}/golden.csv"

  echo "=== crash: procs run, kill -9 one worker mid-cell ==="
  # The per-cell delay keeps workers inside a cell long enough to be shot.
  E2C_EXP_TEST_CELL_DELAY_MS=300 \
    "${dir}/src/cli/e2c_experiment" "${work}/sweep.ini" 2 --backend procs \
    --journal "${work}/journal.txt" > "${work}/procs.out" &
  local runner=$!
  local victim=""
  for _ in $(seq 1 100); do
    victim="$(pgrep -P "${runner}" | head -n1 || true)"
    [ -n "${victim}" ] && break
    sleep 0.05
  done
  if [ -z "${victim}" ]; then
    echo "crash smoke: runner spawned no worker to kill" >&2
    kill "${runner}" 2>/dev/null || true
    exit 1
  fi
  kill -9 "${victim}"
  echo "killed worker pid ${victim}"
  wait "${runner}" || {
    echo "crash smoke: procs run exited nonzero after worker kill" >&2
    exit 1
  }

  echo "=== crash: golden CSV must survive the crash byte-for-byte ==="
  diff "${work}/golden.csv" "${work}/RESULTS.csv" || {
    echo "crash smoke: procs CSV diverged from the threads golden" >&2
    exit 1
  }
  grep -q "0 failed" "${work}/procs.out" || {
    echo "crash smoke: sweep reported failed cells:" >&2
    cat "${work}/procs.out" >&2
    exit 1
  }
  echo "=== crash: journal must be valid and complete ==="
  head -n1 "${work}/journal.txt" | grep -q '^e2c-sweep-journal v1 ' || {
    echo "crash smoke: bad journal header" >&2
    exit 1
  }
  local cells
  cells="$(grep -c '^cell ' "${work}/journal.txt")"
  if [ "${cells}" -ne 4 ]; then
    echo "crash smoke: journal records ${cells}/4 cells" >&2
    exit 1
  fi
  echo "crash smoke passed"
}

run_serve_smoke() {
  local dir="${BUILD_ROOT}/serve"
  local work="${dir}/smoke"
  echo "=== serve: configure (Release) ==="
  cmake -S "${ROOT}" -B "${dir}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "=== serve: build e2c_experiment ==="
  cmake --build "${dir}" --target e2c_experiment -j "${JOBS}"
  rm -rf "${work}"
  mkdir -p "${work}"
  local bin="${dir}/src/cli/e2c_experiment"
  local sweep="policies = FCFS, MECT
intensities = low, high
replications = 2
duration = 60
seed = 7"
  for name in direct sub1 sub2; do
    cat > "${work}/${name}.ini" <<INI
[sweep]
${sweep}

[output]
csv = ${work}/${name}.csv
INI
  done

  echo "=== serve: golden direct run ==="
  "${bin}" "${work}/direct.ini" 2 > "${work}/direct.out"

  echo "=== serve: start service (2 warm workers) ==="
  # The per-unit delay keeps workers inside a unit long enough to be shot.
  E2C_SERVE_TEST_UNIT_DELAY_MS=100 \
    "${bin}" --serve "${work}/serve.sock" --serve-workers 2 \
    --journal "${work}/journal" > "${work}/serve.out" 2>&1 &
  local service=$!
  for _ in $(seq 1 100); do
    [ -S "${work}/serve.sock" ] && break
    sleep 0.05
  done
  if [ ! -S "${work}/serve.sock" ]; then
    echo "serve smoke: service never bound its socket" >&2
    kill "${service}" 2>/dev/null || true
    exit 1
  fi

  echo "=== serve: submit two overlapping sweeps, kill -9 one worker ==="
  "${bin}" --submit "${work}/serve.sock" "${work}/sub1.ini" > "${work}/sub1.out" &
  local sub1=$!
  "${bin}" --submit "${work}/serve.sock" "${work}/sub2.ini" > "${work}/sub2.out" &
  local sub2=$!
  local victim=""
  for _ in $(seq 1 100); do
    victim="$(pgrep -P "${service}" | head -n1 || true)"
    [ -n "${victim}" ] && break
    sleep 0.05
  done
  if [ -z "${victim}" ]; then
    echo "serve smoke: service spawned no worker to kill" >&2
    kill "${service}" "${sub1}" "${sub2}" 2>/dev/null || true
    exit 1
  fi
  sleep 0.2  # let the victim get a unit in flight
  kill -9 "${victim}"
  echo "killed worker pid ${victim}"
  wait "${sub1}" || {
    echo "serve smoke: first submission failed" >&2
    cat "${work}/sub1.out" >&2
    exit 1
  }
  wait "${sub2}" || {
    echo "serve smoke: second submission failed" >&2
    cat "${work}/sub2.out" >&2
    exit 1
  }

  echo "=== serve: submitted CSVs must match the direct run byte-for-byte ==="
  diff "${work}/direct.csv" "${work}/sub1.csv" || {
    echo "serve smoke: first submission's CSV diverged from the direct run" >&2
    exit 1
  }
  diff "${work}/direct.csv" "${work}/sub2.csv" || {
    echo "serve smoke: second submission's CSV diverged from the direct run" >&2
    exit 1
  }

  echo "=== serve: SIGTERM drain must exit 0 with complete journals ==="
  kill -TERM "${service}"
  wait "${service}" || {
    echo "serve smoke: service exited nonzero on drain" >&2
    cat "${work}/serve.out" >&2
    exit 1
  }
  grep -q "service drained: 2 job" "${work}/serve.out" || {
    echo "serve smoke: drain summary missing from service output" >&2
    cat "${work}/serve.out" >&2
    exit 1
  }
  for id in 1 2; do
    local journal="${work}/journal.job${id}"
    head -n1 "${journal}" | grep -q '^e2c-sweep-journal v1 ' || {
      echo "serve smoke: bad journal header in ${journal}" >&2
      exit 1
    }
    local cells
    cells="$(grep -c '^cell ' "${journal}")"
    if [ "${cells}" -ne 4 ]; then
      echo "serve smoke: ${journal} records ${cells}/4 cells" >&2
      exit 1
    fi
  done
  echo "serve smoke passed"
}

run_suite() {
  local name="$1" sanitize="$2" filter="${3:-}"
  local dir="${BUILD_ROOT}/${name}"
  echo "=== ${name}: configure (${sanitize}) ==="
  cmake -S "${ROOT}" -B "${dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DE2C_SANITIZE="${sanitize}" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  if [ -n "${filter}" ]; then
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" -R "${filter}")
  else
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  fi
}

# halt_on_error makes sanitizer findings fail tests instead of just logging.
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

suites=("$@")
if [ ${#suites[@]} -eq 0 ]; then
  suites=(asan ubsan tsan)
fi

for suite in "${suites[@]}"; do
  case "${suite}" in
    asan)  run_suite asan address ;;
    ubsan) run_suite ubsan undefined ;;
    tsan)  run_suite tsan thread 'test_thread_pool|test_substrate_combos|test_experiment_plane|test_io_contention|test_task_state|test_serve' ;;
    bench) run_bench_smoke ;;
    crash) run_crash_smoke ;;
    serve) run_serve_smoke ;;
    *) echo "unknown suite '${suite}' (asan | ubsan | tsan | bench | crash | serve)" >&2; exit 2 ;;
  esac
done

echo "sanitizer sweep passed"
