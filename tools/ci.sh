#!/usr/bin/env bash
# Sanitizer CI sweep: builds the tree in Debug with the requested
# sanitizer(s) and runs ctest under each. Any sanitizer report fails the run.
#
# Usage: tools/ci.sh [suite ...]
#   suites: asan | ubsan | tsan   (default: all three)
#   E2C_BUILD_ROOT overrides the build root (default: <repo>/build-san)
#
# The tsan suite runs only the threaded tests (thread pool and the parallel
# substrate-combo sweep) — the rest of the suite is single-threaded by design
# and would only slow the job down.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${E2C_BUILD_ROOT:-${ROOT}/build-san}"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local name="$1" sanitize="$2" filter="${3:-}"
  local dir="${BUILD_ROOT}/${name}"
  echo "=== ${name}: configure (${sanitize}) ==="
  cmake -S "${ROOT}" -B "${dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DE2C_SANITIZE="${sanitize}" >/dev/null
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  if [ -n "${filter}" ]; then
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" -R "${filter}")
  else
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  fi
}

# halt_on_error makes sanitizer findings fail tests instead of just logging.
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

suites=("$@")
if [ ${#suites[@]} -eq 0 ]; then
  suites=(asan ubsan tsan)
fi

for suite in "${suites[@]}"; do
  case "${suite}" in
    asan)  run_suite asan address ;;
    ubsan) run_suite ubsan undefined ;;
    tsan)  run_suite tsan thread 'test_thread_pool|test_substrate_combos' ;;
    *) echo "unknown suite '${suite}' (asan | ubsan | tsan)" >&2; exit 2 ;;
  esac
done

echo "sanitizer sweep passed"
