/// \file gen_fixtures.cpp
/// \brief Regenerates the CSV fixtures shipped under data/.
///
/// Everything in data/ is a deterministic function of this tool, so the
/// fixtures can be audited and rebuilt:
///   eet_homogeneous.csv / eet_heterogeneous.csv — the classroom systems;
///   workload_{low,medium,high}.csv — the assignment's three traces,
///     generated against the heterogeneous EET at seed 7;
///   quiz_eet.csv — the pre/post quiz's 3x4 matrix;
///   survey_responses.csv — the bundled 23-respondent dataset.
///
///   $ e2c_gen_fixtures [output_dir=data]
#include <iostream>
#include <string>

#include "edu/quiz.hpp"
#include "edu/survey.hpp"
#include "exp/scenario.hpp"
#include "util/error.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace e2c;
  const std::string dir = argc > 1 ? argv[1] : "data";
  try {
    const auto homog = exp::homogeneous_classroom();
    const auto hetero = exp::heterogeneous_classroom();
    homog.eet.save_csv(dir + "/eet_homogeneous.csv");
    hetero.eet.save_csv(dir + "/eet_heterogeneous.csv");

    const auto machine_types = exp::machine_types_of(hetero);
    for (const auto intensity :
         {workload::Intensity::kLow, workload::Intensity::kMedium,
          workload::Intensity::kHigh}) {
      const auto generator = workload::config_for_intensity(
          hetero.eet, machine_types, intensity, /*duration=*/200.0, /*seed=*/7);
      const auto trace = workload::generate_workload(hetero.eet, generator);
      trace.save_csv(
          dir + "/workload_" + workload::intensity_name(intensity) + ".csv",
          hetero.eet);
      std::cout << "workload_" << workload::intensity_name(intensity) << ".csv: "
                << trace.size() << " tasks\n";
    }

    edu::default_quiz().eet.save_csv(dir + "/quiz_eet.csv");
    edu::SurveyDataset::bundled().save_csv(dir + "/survey_responses.csv");
    std::cout << "fixtures written under " << dir << "/\n";
    return 0;
  } catch (const Error& error) {
    std::cerr << "gen_fixtures: " << error.what() << "\n";
    return 1;
  }
}
