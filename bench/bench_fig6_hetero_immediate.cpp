// Reproduces Figure 6 of the paper: completion percentage of the immediate
// scheduling policies (FCFS, MECT, MEET) on a HETEROGENEOUS system at low /
// medium / high arrival intensity.
//
// Expected shape (paper §4): completion % decreases with intensity, and
// "MECT performs better than FCFS" because FCFS ignores the EET matrix on a
// system where machine speeds differ per task type.
#include "bench_common.hpp"

int main() {
  using namespace e2c;
  using workload::Intensity;

  const auto spec = bench::figure_spec(exp::heterogeneous_classroom(),
                                       {"FCFS", "MECT", "MEET"});
  const auto result = exp::run_experiment(spec);
  bench::print_figure(result, "Fig. 6 — immediate policies, heterogeneous system");

  bool ok = true;
  for (const std::string& policy : spec.policies) {
    ok &= bench::check(
        result.cell(policy, Intensity::kLow).mean_completion_percent() >
            result.cell(policy, Intensity::kHigh).mean_completion_percent(),
        policy + ": completion drops from low to high intensity");
  }
  for (Intensity intensity :
       {Intensity::kLow, Intensity::kMedium, Intensity::kHigh}) {
    ok &= bench::check(
        result.cell("MECT", intensity).mean_completion_percent() >
            result.cell("FCFS", intensity).mean_completion_percent(),
        std::string("MECT beats FCFS at ") + workload::intensity_name(intensity) +
            " intensity (the assignment's headline lesson)");
  }
  // MEET is competitive at low load but saturates favourite machines as the
  // load grows, falling behind MECT.
  ok &= bench::check(
      result.cell("MECT", Intensity::kHigh).mean_completion_percent() >
          result.cell("MEET", Intensity::kHigh).mean_completion_percent(),
      "MECT beats MEET at high intensity (MEET herds tasks onto favourites)");
  return ok ? 0 : 1;
}
