// Ablation bench for stochastic execution times (PET) and probabilistic
// task pruning — the E2C authors' robustness line ([8]/[10]/[14]) that the
// paper's scheduler menu builds on.
//
// Sweeps execution-time variability (cv of a lognormal PET) on the
// heterogeneous system at high intensity and compares plain Min-Min against
// PAM at several success thresholds.
//
// Expected shape: at cv=0 PAM equals MM-with-feasibility; as variability
// grows, every policy loses completion, and PAM's pruning keeps it at or
// above MM (it stops spending machine time on likely-doomed tasks).
#include "bench_common.hpp"
#include "hetero/pet_matrix.hpp"
#include "reports/metrics.hpp"
#include "sched/pam.hpp"
#include "sched/registry.hpp"
#include "workload/generator.hpp"

namespace {

double run_cell(const e2c::sched::SystemConfig& base, double cv,
                const std::string& policy, double threshold, std::size_t replications) {
  using namespace e2c;
  const auto machine_types = exp::machine_types_of(base);
  double total = 0.0;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    auto config = base;
    if (cv > 0.0) {
      config.pet = hetero::PetMatrix::homoscedastic(config.eet,
                                                    hetero::PetKind::kLognormal, cv);
    }
    config.sampling_seed = 900 + rep;
    const auto generator = workload::config_for_intensity(
        config.eet, machine_types, workload::Intensity::kHigh, 150.0, 500 + rep);
    const auto trace = workload::generate_workload(config.eet, generator);
    sched::Simulation simulation(
        config, policy == "PAM" ? std::make_unique<sched::PamPolicy>(threshold)
                                : sched::make_policy(policy));
    simulation.load(trace);
    simulation.run();
    total += simulation.counters().completion_percent();
  }
  return total / static_cast<double>(replications);
}

}  // namespace

int main() {
  using namespace e2c;

  const auto base = exp::heterogeneous_classroom(2);
  constexpr std::size_t kReps = 12;
  const std::vector<double> cvs{0.0, 0.2, 0.4, 0.6};

  std::cout << "==== PET / pruning ablation — heterogeneous, high intensity ====\n\n";
  std::cout << "cv,MM,PAM(0.5),PAM(0.9)\n";
  std::vector<double> mm;
  std::vector<double> pam50;
  std::vector<double> pam90;
  for (double cv : cvs) {
    mm.push_back(run_cell(base, cv, "MM", 0.0, kReps));
    pam50.push_back(run_cell(base, cv, "PAM", 0.5, kReps));
    pam90.push_back(run_cell(base, cv, "PAM", 0.9, kReps));
    std::cout << util::format_fixed(cv, 1) << "," << util::format_fixed(mm.back(), 2)
              << "," << util::format_fixed(pam50.back(), 2) << ","
              << util::format_fixed(pam90.back(), 2) << "\n";
  }
  std::cout << "\n";

  bool ok = true;
  ok &= bench::check(std::abs(mm[0] - pam90[0]) < 3.0,
                     "cv=0: PAM reduces to MM's deterministic feasibility pruning");
  ok &= bench::check(mm.back() < mm.front(),
                     "MM: completion degrades as execution-time variance grows");
  for (std::size_t i = 1; i < cvs.size(); ++i) {
    ok &= bench::check(pam90[i] >= mm[i] - 1.5,
                       "cv=" + util::format_fixed(cvs[i], 1) +
                           ": PAM(0.9) completes at least as much as MM");
  }
  ok &= bench::check(pam50.back() >= mm.back() - 1.5,
                     "a permissive threshold (0.5) still avoids MM's wasted work");
  return ok ? 0 : 1;
}
