// Recovery-strategy sweep: wasted work vs machine MTBF per strategy per
// policy.
//
// Each cell runs the heterogeneous classroom under stochastic failures with
// one recovery strategy (resubmit | checkpoint | replicate) and decomposes
// the waste: lost work (executed then discarded), checkpoint overhead
// (writes + restarts), and cancelled-replica seconds (losing copies). The
// fault seed depends only on the replication — never on the strategy — so
// every strategy faces the bit-identical failure schedule and the comparison
// is an honest like-for-like.
//
// Expected shape at the harshest MTBF: checkpointing strictly cuts lost work
// versus resubmit (only the tail since the last commit is lost), and
// replication (k = 2) strictly buys completion versus resubmit (a surviving
// copy rides out the crash) — both paid for in overhead the table makes
// visible. MTBF = 0 encodes "faults disabled": every strategy must then
// produce zero waste of any kind.
#include "bench_common.hpp"
#include "fault/fault_model.hpp"
#include "sched/registry.hpp"
#include "workload/generator.hpp"

namespace {

struct CellOutcome {
  double completion = 0.0;
  double lost = 0.0;       ///< lost work, seconds
  double overhead = 0.0;   ///< checkpoint writes + restarts, seconds
  double replica = 0.0;    ///< cancelled-replica runtime, seconds
};

CellOutcome run_cell(const e2c::sched::SystemConfig& base, const std::string& policy,
                     e2c::fault::RecoveryStrategy strategy, double mtbf,
                     std::size_t replications) {
  using namespace e2c;
  const auto machine_types = exp::machine_types_of(base);
  CellOutcome outcome;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    auto config = base;
    if (mtbf > 0.0) {
      config.faults.enabled = true;
      config.faults.mtbf = mtbf;
      config.faults.mttr = 10.0;
      config.faults.seed = 0xFA17 + rep;  // same failures for every strategy
      config.faults.recovery.strategy = strategy;
      // Short tasks need a short τ; the Young/Daly optimum targets long jobs.
      config.faults.recovery.checkpoint_interval = 1.0;
      config.faults.recovery.checkpoint_cost = 0.1;
      config.faults.recovery.restart_cost = 0.2;
      config.faults.recovery.replicas = 2;
    }
    const auto generator = workload::config_for_intensity(
        config.eet, machine_types, workload::Intensity::kLow, 150.0, 900 + rep);
    const auto trace = workload::generate_workload(config.eet, generator);
    sched::Simulation simulation(config, sched::make_policy(policy));
    simulation.load(trace);
    simulation.run();
    outcome.completion += simulation.counters().completion_percent();
    outcome.lost += simulation.lost_work_seconds();
    outcome.overhead += simulation.checkpoint_overhead_seconds();
    outcome.replica += simulation.counters().cancelled_replica_seconds;
  }
  const auto reps = static_cast<double>(replications);
  outcome.completion /= reps;
  outcome.lost /= reps;
  outcome.overhead /= reps;
  outcome.replica /= reps;
  return outcome;
}

}  // namespace

int main() {
  using namespace e2c;
  using fault::RecoveryStrategy;

  const auto base = exp::heterogeneous_classroom(2);
  const std::vector<std::string> policies = {"MECT", "MM"};
  const std::vector<std::pair<RecoveryStrategy, const char*>> strategies = {
      {RecoveryStrategy::kResubmit, "resubmit"},
      {RecoveryStrategy::kCheckpoint, "checkpoint"},
      {RecoveryStrategy::kReplicate, "replicate"},
  };
  const std::vector<double> mtbfs = {0.0, 200.0, 60.0, 15.0};
  constexpr std::size_t kReps = 5;

  std::cout << "==== recovery strategies — wasted work vs MTBF ====\n\n";
  std::cout << "{\n  \"mttr\": 10.0,\n  \"replications\": " << kReps
            << ",\n  \"checkpoint\": {\"interval\": 1.0, \"cost\": 0.1, "
               "\"restart\": 0.2},\n  \"replicas\": 2,\n  \"cells\": [\n";
  // grid[policy][strategy] = outcomes per mtbf, in mtbfs order.
  std::vector<std::vector<std::vector<CellOutcome>>> grid(
      policies.size(), std::vector<std::vector<CellOutcome>>(strategies.size()));
  bool first = true;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      for (double mtbf : mtbfs) {
        const CellOutcome cell =
            run_cell(base, policies[p], strategies[s].first, mtbf, kReps);
        grid[p][s].push_back(cell);
        if (!first) std::cout << ",\n";
        first = false;
        std::cout << "    {\"policy\": \"" << policies[p] << "\", \"strategy\": \""
                  << strategies[s].second << "\", \"mtbf\": "
                  << util::format_fixed(mtbf, 1) << ", \"completion_percent\": "
                  << util::format_fixed(cell.completion, 2) << ", \"lost_s\": "
                  << util::format_fixed(cell.lost, 2) << ", \"overhead_s\": "
                  << util::format_fixed(cell.overhead, 2) << ", \"replica_s\": "
                  << util::format_fixed(cell.replica, 2) << "}";
      }
    }
  }
  std::cout << "\n  ]\n}\n\n";

  bool ok = true;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const auto& resubmit = grid[p][0];
    const auto& checkpoint = grid[p][1];
    const auto& replicate = grid[p][2];
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      const CellOutcome& baseline = grid[p][s].front();  // mtbf = 0: no faults
      ok &= bench::check(baseline.lost == 0.0 && baseline.overhead == 0.0 &&
                             baseline.replica == 0.0,
                         policies[p] + "/" + strategies[s].second +
                             ": no faults -> no waste of any kind");
    }
    // Harshest cell (mtbf = 15): the strategies must earn their overhead.
    ok &= bench::check(checkpoint.back().lost < resubmit.back().lost,
                       policies[p] +
                           ": checkpointing strictly cuts lost work vs resubmit "
                           "under frequent failures");
    ok &= bench::check(checkpoint.back().overhead > 0.0,
                       policies[p] + ": checkpointing pays visible overhead");
    ok &= bench::check(replicate.back().completion > resubmit.back().completion,
                       policies[p] +
                           ": replication (k=2) strictly buys completion vs "
                           "resubmit under frequent failures");
    ok &= bench::check(replicate.back().replica > 0.0,
                       policies[p] + ": replication charges the losing copies");
  }
  // Same seed, same strategy -> bit-identical summary metrics.
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const CellOutcome a = run_cell(base, "MECT", strategies[s].first, 15.0, 1);
    const CellOutcome b = run_cell(base, "MECT", strategies[s].first, 15.0, 1);
    ok &= bench::check(a.completion == b.completion && a.lost == b.lost &&
                           a.overhead == b.overhead && a.replica == b.replica,
                       std::string("determinism: ") + strategies[s].second +
                           " reruns bit-identically under the same seed");
  }
  return ok ? 0 : 1;
}
