// Recovery-strategy sweep: wasted work vs machine MTBF per strategy per
// policy.
//
// Each cell runs the heterogeneous classroom under stochastic failures with
// one recovery strategy (resubmit | checkpoint | replicate) and decomposes
// the waste: lost work (executed then discarded), checkpoint overhead
// (writes + restarts), and cancelled-replica seconds (losing copies). The
// fault seed depends only on the replication — never on the strategy — so
// every strategy faces the bit-identical failure schedule and the comparison
// is an honest like-for-like.
//
// Expected shape at the harshest MTBF: checkpointing strictly cuts lost work
// versus resubmit (only the tail since the last commit is lost), and
// replication (k = 2) strictly buys completion versus resubmit (a surviving
// copy rides out the crash) — both paid for in overhead the table makes
// visible. MTBF = 0 encodes "faults disabled": every strategy must then
// produce zero waste of any kind.
//
// The interference sweep (tenants x bandwidth) then routes every checkpoint
// write and restart read through the shared I/O channel and compares selfish
// fair-sharing against cooperative single-writer admission. Its JSON lands in
// BENCH_recovery_waste.json (--out FILE); the committed copy is the CI
// baseline. The headline metric, waste_ratio = selfish waste / cooperative
// waste, compares two runs of the same deterministic simulation on the same
// host, so it is machine-independent and safe to gate on any runner.
//
//   bench_recovery_waste [--out FILE.json]
#include <fstream>

#include "bench_common.hpp"
#include "exp/tenants.hpp"
#include "fault/fault_model.hpp"
#include "sched/registry.hpp"
#include "workload/generator.hpp"

namespace {

struct CellOutcome {
  double completion = 0.0;
  double lost = 0.0;       ///< lost work, seconds
  double overhead = 0.0;   ///< checkpoint writes + restarts, seconds
  double replica = 0.0;    ///< cancelled-replica runtime, seconds
};

CellOutcome run_cell(const e2c::sched::SystemConfig& base, const std::string& policy,
                     e2c::fault::RecoveryStrategy strategy, double mtbf,
                     std::size_t replications) {
  using namespace e2c;
  const auto machine_types = exp::machine_types_of(base);
  CellOutcome outcome;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    auto config = base;
    if (mtbf > 0.0) {
      config.faults.enabled = true;
      config.faults.mtbf = mtbf;
      config.faults.mttr = 10.0;
      config.faults.seed = 0xFA17 + rep;  // same failures for every strategy
      config.faults.recovery.strategy = strategy;
      // Short tasks need a short τ; the Young/Daly optimum targets long jobs.
      config.faults.recovery.checkpoint_interval = 1.0;
      config.faults.recovery.checkpoint_cost = 0.1;
      config.faults.recovery.restart_cost = 0.2;
      config.faults.recovery.replicas = 2;
    }
    const auto generator = workload::config_for_intensity(
        config.eet, machine_types, workload::Intensity::kLow, 150.0, 900 + rep);
    const auto trace = workload::generate_workload(config.eet, generator);
    sched::Simulation simulation(config, sched::make_policy(policy));
    simulation.load(trace);
    simulation.run();
    outcome.completion += simulation.counters().completion_percent();
    outcome.lost += simulation.lost_work_seconds();
    outcome.overhead += simulation.checkpoint_overhead_seconds();
    outcome.replica += simulation.counters().cancelled_replica_seconds;
  }
  const auto reps = static_cast<double>(replications);
  outcome.completion /= reps;
  outcome.lost /= reps;
  outcome.overhead /= reps;
  outcome.replica /= reps;
  return outcome;
}

struct InterferenceCell {
  std::size_t tenants = 1;
  double bandwidth = 0.0;
  const char* strategy = "selfish";
  double completion = 0.0;
  double lost = 0.0;
  double overhead = 0.0;
  [[nodiscard]] double waste() const { return lost + overhead; }
};

InterferenceCell run_interference_cell(const e2c::sched::SystemConfig& base,
                                       std::size_t tenants, double bandwidth,
                                       e2c::fault::IoStrategy strategy,
                                       std::size_t replications) {
  using namespace e2c;
  InterferenceCell cell;
  cell.tenants = tenants;
  cell.bandwidth = bandwidth;
  cell.strategy = fault::io_strategy_name(strategy);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    auto config = base;
    config.faults.enabled = true;
    config.faults.mtbf = 30.0;
    config.faults.mttr = 3.0;
    config.faults.seed = 0x10C0 + rep;  // same failures for both strategies
    config.faults.recovery.strategy = fault::RecoveryStrategy::kCheckpoint;
    config.faults.recovery.checkpoint_interval = 1.0;
    config.faults.recovery.checkpoint_cost = 0.1;
    config.faults.recovery.restart_cost = 0.2;
    config.faults.io.enabled = true;
    config.faults.io.bandwidth = bandwidth;
    // Explicit byte sizes so the bandwidth axis actually changes transfer
    // durations (derived sizes would keep every write at checkpoint_cost).
    config.faults.io.checkpoint_bytes = 0.8;
    config.faults.io.restart_bytes = 1.6;
    config.faults.io.strategy = strategy;
    config.faults.io.max_writers = 1;

    std::vector<exp::TenantSpec> specs;
    for (std::size_t i = 0; i < tenants; ++i) {
      exp::TenantSpec spec;
      spec.name = "tenant" + std::to_string(i);
      spec.rho = 0.8 / static_cast<double>(tenants);  // constant aggregate load
      spec.duration = 100.0;
      spec.seed = 7000 + 16 * rep + i;
      specs.push_back(std::move(spec));
    }
    const auto trace = exp::make_multi_tenant_workload(config, specs);
    sched::Simulation simulation(config, sched::make_policy("MECT"));
    simulation.load(trace);
    simulation.set_tenant_names(exp::tenant_names(specs));
    simulation.run();
    cell.completion += simulation.counters().completion_percent();
    cell.lost += simulation.lost_work_seconds();
    cell.overhead += simulation.checkpoint_overhead_seconds();
  }
  const auto reps = static_cast<double>(replications);
  cell.completion /= reps;
  cell.lost /= reps;
  cell.overhead /= reps;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace e2c;
  using fault::RecoveryStrategy;

  std::string out_path = "BENCH_recovery_waste.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cout << "usage: bench_recovery_waste [--out FILE.json]\n";
      return 2;
    }
  }

  const auto base = exp::heterogeneous_classroom(2);
  const std::vector<std::string> policies = {"MECT", "MM"};
  const std::vector<std::pair<RecoveryStrategy, const char*>> strategies = {
      {RecoveryStrategy::kResubmit, "resubmit"},
      {RecoveryStrategy::kCheckpoint, "checkpoint"},
      {RecoveryStrategy::kReplicate, "replicate"},
  };
  const std::vector<double> mtbfs = {0.0, 200.0, 60.0, 15.0};
  constexpr std::size_t kReps = 5;

  std::cout << "==== recovery strategies — wasted work vs MTBF ====\n\n";
  std::cout << "{\n  \"mttr\": 10.0,\n  \"replications\": " << kReps
            << ",\n  \"checkpoint\": {\"interval\": 1.0, \"cost\": 0.1, "
               "\"restart\": 0.2},\n  \"replicas\": 2,\n  \"cells\": [\n";
  // grid[policy][strategy] = outcomes per mtbf, in mtbfs order.
  std::vector<std::vector<std::vector<CellOutcome>>> grid(
      policies.size(), std::vector<std::vector<CellOutcome>>(strategies.size()));
  bool first = true;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      for (double mtbf : mtbfs) {
        const CellOutcome cell =
            run_cell(base, policies[p], strategies[s].first, mtbf, kReps);
        grid[p][s].push_back(cell);
        if (!first) std::cout << ",\n";
        first = false;
        std::cout << "    {\"policy\": \"" << policies[p] << "\", \"strategy\": \""
                  << strategies[s].second << "\", \"mtbf\": "
                  << util::format_fixed(mtbf, 1) << ", \"completion_percent\": "
                  << util::format_fixed(cell.completion, 2) << ", \"lost_s\": "
                  << util::format_fixed(cell.lost, 2) << ", \"overhead_s\": "
                  << util::format_fixed(cell.overhead, 2) << ", \"replica_s\": "
                  << util::format_fixed(cell.replica, 2) << "}";
      }
    }
  }
  std::cout << "\n  ]\n}\n\n";

  bool ok = true;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const auto& resubmit = grid[p][0];
    const auto& checkpoint = grid[p][1];
    const auto& replicate = grid[p][2];
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      const CellOutcome& baseline = grid[p][s].front();  // mtbf = 0: no faults
      ok &= bench::check(baseline.lost == 0.0 && baseline.overhead == 0.0 &&
                             baseline.replica == 0.0,
                         policies[p] + "/" + strategies[s].second +
                             ": no faults -> no waste of any kind");
    }
    // Harshest cell (mtbf = 15): the strategies must earn their overhead.
    ok &= bench::check(checkpoint.back().lost < resubmit.back().lost,
                       policies[p] +
                           ": checkpointing strictly cuts lost work vs resubmit "
                           "under frequent failures");
    ok &= bench::check(checkpoint.back().overhead > 0.0,
                       policies[p] + ": checkpointing pays visible overhead");
    ok &= bench::check(replicate.back().completion > resubmit.back().completion,
                       policies[p] +
                           ": replication (k=2) strictly buys completion vs "
                           "resubmit under frequent failures");
    ok &= bench::check(replicate.back().replica > 0.0,
                       policies[p] + ": replication charges the losing copies");
  }
  // Same seed, same strategy -> bit-identical summary metrics.
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const CellOutcome a = run_cell(base, "MECT", strategies[s].first, 15.0, 1);
    const CellOutcome b = run_cell(base, "MECT", strategies[s].first, 15.0, 1);
    ok &= bench::check(a.completion == b.completion && a.lost == b.lost &&
                           a.overhead == b.overhead && a.replica == b.replica,
                       std::string("determinism: ") + strategies[s].second +
                           " reruns bit-identically under the same seed");
  }

  // ---- interference sweep: tenants x bandwidth, selfish vs cooperative ----
  std::cout << "\n==== checkpoint I/O interference — tenants x bandwidth ====\n\n";
  const std::vector<std::size_t> tenant_counts = {1, 2, 4};
  const std::vector<double> bandwidths = {8.0, 2.0};  // write 0.1 s vs 0.4 s solo
  constexpr std::size_t kIoReps = 3;
  std::vector<InterferenceCell> cells;
  struct Ratio {
    std::size_t tenants;
    double bandwidth;
    double waste_ratio;  ///< selfish waste / cooperative waste (> 1: coop wins)
  };
  std::vector<Ratio> ratios;
  for (const std::size_t tenants : tenant_counts) {
    for (const double bandwidth : bandwidths) {
      const InterferenceCell selfish = run_interference_cell(
          base, tenants, bandwidth, fault::IoStrategy::kSelfish, kIoReps);
      const InterferenceCell cooperative = run_interference_cell(
          base, tenants, bandwidth, fault::IoStrategy::kCooperative, kIoReps);
      cells.push_back(selfish);
      cells.push_back(cooperative);
      const double ratio =
          cooperative.waste() > 0.0 ? selfish.waste() / cooperative.waste() : 0.0;
      ratios.push_back({tenants, bandwidth, ratio});
      std::cout << "tenants=" << tenants << " bandwidth=" << bandwidth
                << "  selfish waste=" << util::format_fixed(selfish.waste(), 2)
                << "s  cooperative waste="
                << util::format_fixed(cooperative.waste(), 2)
                << "s  waste_ratio=" << util::format_fixed(ratio, 3) << "\n";
    }
  }

  // At the saturating corner (most tenants, skinniest channel) cooperative
  // admission must strictly reduce total waste versus selfish fair-sharing.
  const Ratio& saturated = ratios.back();
  ok &= bench::check(saturated.waste_ratio > 1.0,
                     "cooperative strictly reduces total waste vs selfish at "
                     "saturating bandwidth (tenants=" +
                         std::to_string(saturated.tenants) + ")");
  {  // determinism of the headline ratio
    const InterferenceCell a = run_interference_cell(
        base, 2, 2.0, fault::IoStrategy::kSelfish, 1);
    const InterferenceCell b = run_interference_cell(
        base, 2, 2.0, fault::IoStrategy::kSelfish, 1);
    ok &= bench::check(a.lost == b.lost && a.overhead == b.overhead,
                       "determinism: interference cells rerun bit-identically");
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"recovery_waste\",\n";
  out << "  \"interference\": {\n"
      << "    \"mtbf\": 30.0, \"mttr\": 3.0, \"aggregate_rho\": 0.8,\n"
      << "    \"checkpoint\": {\"interval\": 1.0, \"cost\": 0.1, \"restart\": 0.2},\n"
      << "    \"io\": {\"checkpoint_bytes\": 0.8, \"restart_bytes\": 1.6, "
         "\"max_writers\": 1},\n"
      << "    \"replications\": " << kIoReps << ",\n    \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const InterferenceCell& cell = cells[i];
    out << "      {\"tenants\": " << cell.tenants << ", \"bandwidth\": "
        << util::format_fixed(cell.bandwidth, 1) << ", \"strategy\": \""
        << cell.strategy << "\", \"completion_percent\": "
        << util::format_fixed(cell.completion, 2) << ", \"lost_s\": "
        << util::format_fixed(cell.lost, 3) << ", \"overhead_s\": "
        << util::format_fixed(cell.overhead, 3) << ", \"waste_s\": "
        << util::format_fixed(cell.waste(), 3) << "}"
        << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "    ],\n    \"waste_ratios\": [\n";
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    out << "      {\"tenants\": " << ratios[i].tenants << ", \"bandwidth\": "
        << util::format_fixed(ratios[i].bandwidth, 1) << ", \"waste_ratio\": "
        << util::format_fixed(ratios[i].waste_ratio, 4) << "}"
        << (i + 1 < ratios.size() ? ",\n" : "\n");
  }
  out << "    ]\n  }\n}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";

  return ok ? 0 : 1;
}
