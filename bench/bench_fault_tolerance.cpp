// Fault-tolerance sweep: completion rate vs machine MTBF per policy.
//
// Each cell runs the heterogeneous classroom with stochastic machine
// failures (exponential MTBF/MTTR), averaged over replications, and prints a
// JSON table of completion-rate degradation. MTBF = 0 encodes "faults
// disabled" (the baseline every policy should match when machines never
// crash).
//
// Expected shape: completion falls monotonically-ish as MTBF shrinks (more
// crashes), and the fault-aware FTMIN-EET holds at least as much completion
// as its fault-blind twin MECT once failures are frequent, because it routes
// work away from machines it has observed crashing.
#include "bench_common.hpp"
#include "reports/metrics.hpp"
#include "sched/registry.hpp"
#include "workload/generator.hpp"

namespace {

struct CellOutcome {
  double completion = 0.0;
  double failed = 0.0;
  double requeued = 0.0;
};

CellOutcome run_cell(const e2c::sched::SystemConfig& base, const std::string& policy,
                     double mtbf, std::size_t replications) {
  using namespace e2c;
  const auto machine_types = exp::machine_types_of(base);
  CellOutcome outcome;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    auto config = base;
    if (mtbf > 0.0) {
      config.faults.enabled = true;
      config.faults.mtbf = mtbf;
      config.faults.mttr = 10.0;
      config.faults.seed = 0xFA17 + rep;
    }
    const auto generator = workload::config_for_intensity(
        config.eet, machine_types, workload::Intensity::kMedium, 150.0, 900 + rep);
    const auto trace = workload::generate_workload(config.eet, generator);
    sched::Simulation simulation(config, sched::make_policy(policy));
    simulation.load(trace);
    simulation.run();
    const auto& counters = simulation.counters();
    outcome.completion += counters.completion_percent();
    outcome.failed += static_cast<double>(counters.failed);
    outcome.requeued += static_cast<double>(counters.requeued);
  }
  const auto reps = static_cast<double>(replications);
  outcome.completion /= reps;
  outcome.failed /= reps;
  outcome.requeued /= reps;
  return outcome;
}

}  // namespace

int main() {
  using namespace e2c;

  const auto base = exp::heterogeneous_classroom(2);
  const std::vector<std::string> policies = {"MECT", "FTMIN-EET", "MM"};
  const std::vector<double> mtbfs = {0.0, 800.0, 400.0, 200.0, 100.0, 50.0};
  constexpr std::size_t kReps = 10;

  std::cout << "==== fault tolerance — completion rate vs MTBF ====\n\n";
  std::cout << "{\n  \"mttr\": 10.0,\n  \"replications\": " << kReps
            << ",\n  \"cells\": [\n";
  std::vector<std::vector<CellOutcome>> grid(policies.size());
  bool first = true;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (double mtbf : mtbfs) {
      const CellOutcome cell = run_cell(base, policies[p], mtbf, kReps);
      grid[p].push_back(cell);
      if (!first) std::cout << ",\n";
      first = false;
      std::cout << "    {\"policy\": \"" << policies[p] << "\", \"mtbf\": "
                << util::format_fixed(mtbf, 1) << ", \"completion_percent\": "
                << util::format_fixed(cell.completion, 2) << ", \"failed\": "
                << util::format_fixed(cell.failed, 2) << ", \"requeued\": "
                << util::format_fixed(cell.requeued, 2) << "}";
    }
  }
  std::cout << "\n  ]\n}\n\n";

  bool ok = true;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const auto& row = grid[p];
    ok &= bench::check(row.front().completion > row.back().completion,
                       policies[p] + ": frequent failures (mtbf=50) cost completion "
                                     "vs the no-fault baseline");
    ok &= bench::check(row.front().failed == 0.0 && row.front().requeued == 0.0,
                       policies[p] + ": no faults -> no failed/requeued tasks");
  }
  const auto& mect = grid[0];
  const auto& ftmin = grid[1];
  ok &= bench::check(ftmin.back().completion >= mect.back().completion - 5.0,
                     "FTMIN-EET holds up against MECT under frequent failures");
  return ok ? 0 : 1;
}
