// google-benchmark microbenchmarks for the simulator substrate: event-queue
// throughput, full engine event dispatch, policy decision latency and
// end-to-end simulation rate. These back the paper's usability claim that
// scenarios run "within a short time ... at no cost" — a classroom scenario
// must simulate in milliseconds.
#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace e2c;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<double> times(count);
  for (auto& t : times) t = rng.uniform(0.0, 1000.0);
  for (auto _ : state) {
    core::EventQueue queue;
    for (double t : times) {
      (void)queue.schedule(t, core::EventPriority::kArrival, "", {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_EngineDispatch(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::Engine engine;
    for (std::size_t i = 0; i < count; ++i) {
      (void)engine.schedule_at(static_cast<double>(i), core::EventPriority::kControl, "",
                               [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.processed_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EngineDispatch)->Arg(1000)->Arg(10000);

void BM_PolicyDecision(benchmark::State& state, const char* policy_name) {
  auto system = exp::heterogeneous_classroom();
  const auto policy = sched::make_policy(policy_name);
  // A loaded batch queue of 32 tasks against 4 machines.
  std::vector<workload::TaskDef> tasks;
  for (std::uint64_t i = 0; i < 32; ++i) {
    workload::TaskDef task;
    task.id = i;
    task.type = i % system.eet.task_type_count();
    task.arrival = 0.0;
    task.deadline = 60.0 + static_cast<double>(i);
    tasks.push_back(task);
  }
  std::vector<const workload::TaskDef*> queue;
  for (const auto& task : tasks) queue.push_back(&task);
  std::vector<sched::MachineView> machines;
  for (std::size_t m = 0; m < 4; ++m) {
    machines.push_back({m, m, 0.0, 64, 10.0, 100.0});
  }
  for (auto _ : state) {
    sched::SchedulingContext context(0.0, system.eet, machines, queue, {});
    benchmark::DoNotOptimize(policy->schedule(context));
  }
}
BENCHMARK_CAPTURE(BM_PolicyDecision, fcfs, "FCFS");
BENCHMARK_CAPTURE(BM_PolicyDecision, mect, "MECT");
BENCHMARK_CAPTURE(BM_PolicyDecision, min_min, "MM");
BENCHMARK_CAPTURE(BM_PolicyDecision, felare, "FELARE");

void BM_FullSimulation(benchmark::State& state, const char* policy_name) {
  auto system = exp::heterogeneous_classroom();
  const auto machine_types = exp::machine_types_of(system);
  const auto generator = workload::config_for_intensity(
      system.eet, machine_types, workload::Intensity::kMedium,
      static_cast<double>(state.range(0)), 7);
  const auto trace = workload::generate_workload(system.eet, generator);
  for (auto _ : state) {
    sched::Simulation simulation(system, sched::make_policy(policy_name));
    simulation.load(trace);
    simulation.run();
    benchmark::DoNotOptimize(simulation.counters().completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.SetLabel(std::to_string(trace.size()) + " tasks");
}
BENCHMARK_CAPTURE(BM_FullSimulation, mect, "MECT")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_FullSimulation, min_min, "MM")->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
