// Scheduler hot-path benchmark: batch-mapper throughput, fast vs reference.
//
// Part 1 drives Policy::schedule() directly on synthetic SchedulingContexts
// at batch-queue depths 100 / 1k / 10k for every dual-implementation batch
// mapper (MM, MMU, MSD, ELARE, FELARE), timing whole scheduler invocations
// and the mapping rounds inside them. Before timing, each (policy, depth)
// cell asserts that the fast and reference mappers emit the identical
// assignment sequence — a benchmark of two implementations that diverge
// would be meaningless.
//
// Part 2 runs full simulations (MM and ELARE, both implementations) at
// overload so the end-to-end events/s impact of the mapper rewrite is
// visible next to BENCH_core_hotpath.json's numbers.
//
// Writes BENCH_sched_hotpath.json; CI compares the fast/reference speedup
// ratios (machine-independent) against the committed baseline.
//
//   bench_sched_hotpath [--depths 100,1000,10000] [--out FILE.json]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "hetero/eet_matrix.hpp"
#include "sched/batch.hpp"
#include "sched/elare.hpp"
#include "sched/policy.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using e2c::sched::Assignment;
using e2c::sched::MachineView;
using e2c::sched::Policy;
using e2c::sched::SchedImpl;
using e2c::sched::SchedulingContext;

constexpr std::size_t kMachineCount = 12;
constexpr std::size_t kSlotsPerMachine = 4;

/// A reusable scheduling scenario: schedule() mutates its context (machine
/// projections), so every invocation gets a fresh context stamped from this
/// template. The stamping cost is O(depth) pointer copies, identical for
/// both implementations.
struct BenchScenario {
  e2c::hetero::EetMatrix eet;
  std::vector<MachineView> machines;
  std::vector<e2c::workload::TaskDef> tasks;
  std::vector<double> ontime_rates;

  [[nodiscard]] SchedulingContext make_context() const {
    std::vector<const e2c::workload::TaskDef*> queue;
    queue.reserve(tasks.size());
    for (const auto& task : tasks) queue.push_back(&task);
    return SchedulingContext(0.0, eet, machines, std::move(queue), ontime_rates);
  }
};

BenchScenario make_scenario(std::size_t depth) {
  e2c::util::Rng rng(0x5EDBEEF0 + depth);

  // Inconsistent heterogeneity (the paper's GPU/FPGA/ASIC regime): 10 task
  // types x 6 machine types, cells in roughly [2, 32] seconds.
  std::vector<std::string> task_names;
  std::vector<std::string> machine_names;
  for (int t = 0; t < 10; ++t) task_names.push_back("T" + std::to_string(t));
  for (int m = 0; m < 6; ++m) machine_names.push_back("M" + std::to_string(m));
  BenchScenario scenario{
      e2c::hetero::EetMatrix::random(task_names, machine_names, /*base=*/2.0,
                                     /*task_range=*/4.0, /*machine_range=*/4.0,
                                     /*inconsistent=*/true, rng),
      {},
      {},
      {}};

  // Bounded machine queues keep the rounds per invocation bounded (at most
  // machines x slots commits), so one invocation's cost scales with depth —
  // the quantity under test — not with how much work fits on the fleet.
  for (std::size_t j = 0; j < kMachineCount; ++j) {
    MachineView view;
    view.id = j;
    view.type = j % scenario.eet.machine_type_count();
    view.ready_time = rng.uniform(0.0, 20.0);
    view.free_slots = kSlotsPerMachine;
    view.idle_watts = 10.0;
    view.busy_watts = rng.uniform(60.0, 180.0);
    scenario.machines.push_back(view);
  }

  // Half the deadlines are tight enough that commits push them infeasible
  // mid-invocation — the deferral path a deep queue at overload exercises.
  for (std::size_t i = 0; i < depth; ++i) {
    e2c::workload::TaskDef task;
    task.id = i + 1;
    task.type = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(scenario.eet.task_type_count()) - 1));
    task.arrival = static_cast<double>(i) * 0.01;
    task.deadline = rng.bernoulli(0.5) ? rng.uniform(20.0, 80.0) : 1e9;
    scenario.tasks.push_back(task);
  }

  for (std::size_t t = 0; t < scenario.eet.task_type_count(); ++t) {
    scenario.ontime_rates.push_back(rng.uniform(0.3, 1.0));
  }
  return scenario;
}

struct MapperSpec {
  const char* name;
  std::function<std::unique_ptr<Policy>(SchedImpl)> make;
};

const std::vector<MapperSpec>& mapper_specs() {
  static const std::vector<MapperSpec> specs = {
      {"MM", [](SchedImpl i) { return std::make_unique<e2c::sched::MinMinPolicy>(i); }},
      {"MMU",
       [](SchedImpl i) { return std::make_unique<e2c::sched::MaxUrgencyPolicy>(i); }},
      {"MSD",
       [](SchedImpl i) { return std::make_unique<e2c::sched::SoonestDeadlinePolicy>(i); }},
      {"ELARE",
       [](SchedImpl i) { return std::make_unique<e2c::sched::ElarePolicy>(0.5, i); }},
      {"FELARE",
       [](SchedImpl i) { return std::make_unique<e2c::sched::FelarePolicy>(0.5, i); }},
  };
  return specs;
}

struct ScheduleRow {
  std::string policy;
  std::string impl;
  std::size_t depth = 0;
  std::uint64_t invocations = 0;
  std::uint64_t rounds = 0;  // mapping rounds = assignments + the final scan
  std::uint64_t assignments = 0;
  double seconds = 0.0;
  double invocations_per_sec = 0.0;
  double rounds_per_sec = 0.0;
};

ScheduleRow time_schedule(const MapperSpec& spec, SchedImpl impl,
                          const BenchScenario& scenario, std::size_t depth) {
  ScheduleRow row;
  row.policy = spec.name;
  row.impl = e2c::sched::sched_impl_name(impl);
  row.depth = depth;

  const auto policy = spec.make(impl);
  {  // warm-up: fault in scratch allocations outside the timed region
    SchedulingContext context = scenario.make_context();
    (void)policy->schedule(context);
  }

  constexpr double kTargetSeconds = 0.25;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < kTargetSeconds) {
    SchedulingContext context = scenario.make_context();
    const std::vector<Assignment> assignments = policy->schedule(context);
    ++row.invocations;
    row.assignments += assignments.size();
    row.rounds += assignments.size() + 1;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
  }
  row.seconds = elapsed;
  row.invocations_per_sec = static_cast<double>(row.invocations) / elapsed;
  row.rounds_per_sec = static_cast<double>(row.rounds) / elapsed;
  return row;
}

/// Decision equivalence inside the bench: a speedup between two mappers that
/// disagree would be measuring the wrong thing.
void check_equivalence(const MapperSpec& spec, const BenchScenario& scenario) {
  const auto fast = spec.make(SchedImpl::kFast);
  const auto reference = spec.make(SchedImpl::kReference);
  SchedulingContext fast_context = scenario.make_context();
  SchedulingContext reference_context = scenario.make_context();
  const auto got = fast->schedule(fast_context);
  const auto want = reference->schedule(reference_context);
  bool same = got.size() == want.size();
  for (std::size_t k = 0; same && k < got.size(); ++k) {
    same = got[k].task == want[k].task && got[k].machine == want[k].machine;
  }
  if (!same) {
    throw e2c::InvariantError(std::string("fast/reference divergence in ") + spec.name);
  }
}

struct EndToEndRow {
  std::string policy;
  std::string impl;
  std::size_t tasks = 0;
  std::uint64_t events = 0;
  std::uint64_t scheduler_invocations = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
};

EndToEndRow run_end_to_end(const MapperSpec& spec, SchedImpl impl) {
  e2c::sched::SystemConfig config = e2c::exp::heterogeneous_classroom(2);
  const auto machine_types = e2c::exp::machine_types_of(config);
  // Overload (rho 4) keeps a deep batch queue in front of the mapper for the
  // whole run — the regime where mapper cost dominates the event loop.
  const auto generator = e2c::workload::config_for_offered_load(
      config.eet, machine_types, /*rho=*/4.0, /*duration=*/8000.0, /*seed=*/20230607);
  const auto workload = e2c::workload::generate_workload(config.eet, generator);

  EndToEndRow row;
  row.policy = spec.name;
  row.impl = e2c::sched::sched_impl_name(impl);
  row.tasks = workload.size();

  e2c::sched::Simulation simulation(std::move(config), spec.make(impl));
  simulation.load(workload);
  const auto start = std::chrono::steady_clock::now();
  simulation.run();
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  row.events = simulation.engine().processed_count();
  row.scheduler_invocations = simulation.scheduler_invocations();
  if (row.seconds > 0.0) {
    row.events_per_sec = static_cast<double>(row.events) / row.seconds;
  }
  return row;
}

std::vector<std::size_t> parse_depths(const std::string& csv) {
  std::vector<std::size_t> depths;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const long long value = std::stoll(token);
    e2c::require_input(value > 0, "--depths entries must be positive integers");
    depths.push_back(static_cast<std::size_t>(value));
  }
  e2c::require_input(!depths.empty(), "--depths needs at least one entry");
  return depths;
}

struct Speedup {
  std::string policy;
  std::size_t depth = 0;
  double speedup = 0.0;  // fast rounds/s over reference rounds/s
};

void write_json(const std::string& path, const std::vector<ScheduleRow>& schedule_rows,
                const std::vector<Speedup>& speedups,
                const std::vector<EndToEndRow>& end_to_end) {
  std::ofstream out(path);
  if (!out.good()) throw e2c::IoError("cannot write " + path);
  out << "{\n  \"bench\": \"sched_hotpath\",\n  \"schedule_results\": [\n";
  for (std::size_t i = 0; i < schedule_rows.size(); ++i) {
    const ScheduleRow& row = schedule_rows[i];
    out << "    {\"policy\": \"" << row.policy << "\", \"impl\": \"" << row.impl
        << "\", \"depth\": " << row.depth << ", \"invocations\": " << row.invocations
        << ", \"rounds\": " << row.rounds << ", \"assignments\": " << row.assignments
        << ", \"seconds\": " << row.seconds
        << ", \"invocations_per_sec\": " << row.invocations_per_sec
        << ", \"rounds_per_sec\": " << row.rounds_per_sec << "}"
        << (i + 1 < schedule_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedups\": [\n";
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    out << "    {\"policy\": \"" << speedups[i].policy
        << "\", \"depth\": " << speedups[i].depth
        << ", \"speedup\": " << speedups[i].speedup << "}"
        << (i + 1 < speedups.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"end_to_end\": [\n";
  for (std::size_t i = 0; i < end_to_end.size(); ++i) {
    const EndToEndRow& row = end_to_end[i];
    out << "    {\"policy\": \"" << row.policy << "\", \"impl\": \"" << row.impl
        << "\", \"tasks\": " << row.tasks << ", \"events\": " << row.events
        << ", \"scheduler_invocations\": " << row.scheduler_invocations
        << ", \"seconds\": " << row.seconds
        << ", \"events_per_sec\": " << row.events_per_sec << "}"
        << (i + 1 < end_to_end.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> depths = {100, 1'000, 10'000};
  std::string out_path = "BENCH_sched_hotpath.json";
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--depths" && i + 1 < argc) {
        depths = parse_depths(argv[++i]);
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--help") {
        std::cout << "usage: bench_sched_hotpath [--depths N,N,...] [--out FILE.json]\n";
        return 0;
      } else {
        std::cerr << "bench_sched_hotpath: unknown argument '" << arg << "'\n";
        return 2;
      }
    }

    std::vector<ScheduleRow> schedule_rows;
    std::vector<Speedup> speedups;
    std::cout << "==== schedule() throughput: rounds/sec by mapper, impl, depth ====\n";
    for (const MapperSpec& spec : mapper_specs()) {
      for (const std::size_t depth : depths) {
        const BenchScenario scenario = make_scenario(depth);
        check_equivalence(spec, scenario);
        const ScheduleRow fast = time_schedule(spec, SchedImpl::kFast, scenario, depth);
        const ScheduleRow reference =
            time_schedule(spec, SchedImpl::kReference, scenario, depth);
        Speedup speedup;
        speedup.policy = spec.name;
        speedup.depth = depth;
        speedup.speedup = reference.rounds_per_sec > 0.0
                              ? fast.rounds_per_sec / reference.rounds_per_sec
                              : 0.0;
        for (const ScheduleRow& row : {fast, reference}) {
          std::cout << row.policy << " impl=" << row.impl << " depth=" << row.depth
                    << " invocations=" << row.invocations
                    << " rounds/sec=" << static_cast<std::uint64_t>(row.rounds_per_sec)
                    << "\n";
          schedule_rows.push_back(row);
        }
        std::cout << "  -> " << spec.name << " depth=" << depth << " speedup=" << speedup.speedup
                  << "x\n";
        speedups.push_back(speedup);
      }
    }

    std::vector<EndToEndRow> end_to_end;
    std::cout << "==== end-to-end events/sec at overload (rho=4) ====\n";
    for (const MapperSpec& spec : mapper_specs()) {
      if (std::string(spec.name) != "MM" && std::string(spec.name) != "ELARE") continue;
      for (const SchedImpl impl : {SchedImpl::kFast, SchedImpl::kReference}) {
        const EndToEndRow row = run_end_to_end(spec, impl);
        std::cout << row.policy << " impl=" << row.impl << " tasks=" << row.tasks
                  << " events=" << row.events
                  << " events/sec=" << static_cast<std::uint64_t>(row.events_per_sec)
                  << " scheduler_invocations=" << row.scheduler_invocations << "\n";
        end_to_end.push_back(row);
      }
    }

    write_json(out_path, schedule_rows, speedups, end_to_end);
    std::cout << "wrote " << out_path << "\n";
    return 0;
  } catch (const e2c::InputError& error) {
    std::cerr << "bench_sched_hotpath: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "bench_sched_hotpath: " << error.what() << "\n";
    return 1;
  }
}
