// Resident-service throughput: the same job stream submitted to a warm
// `--serve` service versus spawn-per-sweep (fork+exec of e2c_experiment for
// every job, the pre-service workflow). The service keeps worker processes,
// parsed specs, generated traces, and Simulation leases resident across
// requests, so a repeated job pays only scheduling + metric time; the spawn
// baseline pays process startup, INI parse, trace generation, and arena
// construction on every submission.
//
// The job stream cycles a small set of distinct sweep configs (distinct
// seeds), matching the interactive use case the service exists for: a
// classroom or notebook re-running near-identical sweeps. One untimed
// warmup pass populates the worker caches; the spawn baseline has no cache
// to warm — that asymmetry IS the measurement.
//
// Reported per lane: jobs/s plus p50/p99 per-job latency. The serve/spawn
// jobs-per-second ratio ("speedup") compares two configurations on the same
// host, so tools/ci.sh gates it machine-independently against the committed
// BENCH_serve.json (floor 70% of baseline).
//
//   bench_serve [--jobs N] [--out FILE.json]
//
// Exit codes: 0 success, 1 internal error, 2 invalid input.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "exp/serve.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace {

/// Distinct sweep configs cycled through the job stream; must stay <= the
/// service's per-worker job-cache capacity so the steady state is warm.
constexpr int kDistinctConfigs = 2;

/// Both lanes run this many worker processes.
constexpr int kWorkers = 2;

std::string config_text(int seed) {
  return "[sweep]\n"
         "policies = FCFS, MECT\n"
         "intensities = low, high\n"
         "replications = 2\n"
         "duration = 60\n"
         "seed = " +
         std::to_string(seed) + "\n";
}

struct Lane {
  std::string name;  // "spawn" | "serve"
  std::size_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Nearest-rank percentile (q in [0,1]) of per-job latencies, in ms.
double percentile_ms(std::vector<double> latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(latencies.size() - 1) + 0.5);
  return latencies[std::min(rank, latencies.size() - 1)] * 1e3;
}

Lane finish_lane(const char* name, const std::vector<double>& latencies, double seconds) {
  Lane lane;
  lane.name = name;
  lane.jobs = latencies.size();
  lane.seconds = seconds;
  if (seconds > 0.0) lane.jobs_per_sec = static_cast<double>(latencies.size()) / seconds;
  lane.p50_ms = percentile_ms(latencies, 0.50);
  lane.p99_ms = percentile_ms(latencies, 0.99);
  return lane;
}

/// One spawn-per-sweep job: fork+exec the real CLI on a config file with the
/// procs backend (the closest pre-service equivalent of a service job),
/// output discarded.
void run_spawned_job(const std::string& ini_path) {
  // Flush before forking: the child's freopen would otherwise flush any
  // buffered parent output to the real stdout, duplicating it per job.
  std::cout.flush();
  const pid_t pid = ::fork();
  if (pid < 0) throw e2c::IoError("fork failed");
  if (pid == 0) {
    if (::freopen("/dev/null", "w", stdout) == nullptr) _exit(127);
    if (::freopen("/dev/null", "w", stderr) == nullptr) _exit(127);
    ::execl(E2C_EXPERIMENT_BIN, E2C_EXPERIMENT_BIN, ini_path.c_str(),
            std::to_string(kWorkers).c_str(), "--backend", "procs",
            static_cast<char*>(nullptr));
    _exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    throw e2c::IoError("spawned e2c_experiment job failed");
  }
}

Lane run_spawn_lane(std::size_t jobs, const std::string& work_dir) {
  std::vector<std::string> ini_paths;
  for (int c = 0; c < kDistinctConfigs; ++c) {
    const std::string path = work_dir + "/serve_bench_" + std::to_string(c) + ".ini";
    std::ofstream out(path);
    out << config_text(7 + c);
    if (!out.good()) throw e2c::IoError("cannot write " + path);
    ini_paths.push_back(path);
  }
  std::vector<double> latencies;
  latencies.reserve(jobs);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t j = 0; j < jobs; ++j) {
    const auto t0 = std::chrono::steady_clock::now();
    run_spawned_job(ini_paths[j % ini_paths.size()]);
    const auto t1 = std::chrono::steady_clock::now();
    latencies.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  const auto stop = std::chrono::steady_clock::now();
  for (const auto& path : ini_paths) ::unlink(path.c_str());
  return finish_lane("spawn", latencies,
                     std::chrono::duration<double>(stop - start).count());
}

Lane run_serve_lane(std::size_t jobs, const std::string& socket_path) {
  std::cout.flush();
  const pid_t service = ::fork();
  if (service < 0) throw e2c::IoError("fork failed");
  if (service == 0) {
    try {
      e2c::exp::ServeOptions options;
      options.socket_path = socket_path;
      options.workers = kWorkers;
      options.backlog = 8;
      e2c::exp::run_serve(options);
      _exit(0);
    } catch (...) {
      _exit(1);
    }
  }

  // Wait for the socket to accept submissions, then one untimed warmup pass
  // so every distinct config is resident in the worker caches.
  bool up = false;
  for (int attempt = 0; attempt < 250 && !up; ++attempt) {
    try {
      (void)e2c::exp::submit_job(socket_path, config_text(7));
      up = true;
    } catch (const e2c::InputError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  if (!up) {
    ::kill(service, SIGKILL);
    ::waitpid(service, nullptr, 0);
    throw e2c::IoError("serve lane: service never came up at " + socket_path);
  }
  for (int c = 0; c < kDistinctConfigs; ++c) {
    (void)e2c::exp::submit_job(socket_path, config_text(7 + c));
  }

  std::vector<double> latencies;
  latencies.reserve(jobs);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t j = 0; j < jobs; ++j) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)e2c::exp::submit_job(socket_path,
                               config_text(7 + static_cast<int>(j) % kDistinctConfigs));
    const auto t1 = std::chrono::steady_clock::now();
    latencies.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  const auto stop = std::chrono::steady_clock::now();

  ::kill(service, SIGTERM);
  int status = 0;
  ::waitpid(service, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    throw e2c::IoError("service did not drain cleanly");
  }
  return finish_lane("serve", latencies,
                     std::chrono::duration<double>(stop - start).count());
}

void write_json(const std::string& path, std::size_t jobs, const Lane& spawn,
                const Lane& serve, double speedup) {
  std::ofstream out(path);
  if (!out.good()) throw e2c::IoError("cannot write " + path);
  out << "{\n  \"bench\": \"serve\",\n  \"jobs\": " << jobs
      << ",\n  \"workers\": " << kWorkers
      << ",\n  \"distinct_configs\": " << kDistinctConfigs << ",\n  \"results\": [\n";
  const Lane* lanes[] = {&spawn, &serve};
  for (std::size_t i = 0; i < 2; ++i) {
    const Lane& lane = *lanes[i];
    out << "    {\"lane\": \"" << lane.name << "\", \"jobs\": " << lane.jobs
        << ", \"seconds\": " << lane.seconds
        << ", \"jobs_per_sec\": " << lane.jobs_per_sec
        << ", \"p50_ms\": " << lane.p50_ms << ", \"p99_ms\": " << lane.p99_ms << "}"
        << (i == 0 ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedup\": " << speedup << "\n}\n";
}

void print_lane(const Lane& lane) {
  std::cout << lane.name << ": jobs=" << lane.jobs << " seconds=" << lane.seconds
            << " jobs/sec=" << lane.jobs_per_sec << " p50_ms=" << lane.p50_ms
            << " p99_ms=" << lane.p99_ms << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 20;
  std::string out_path = "BENCH_serve.json";
  try {
    const auto flag_value = [&](int& i, const std::string& flag) {
      e2c::require_input(i + 1 < argc, "missing value for " + flag);
      return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--jobs") {
        const std::string value = flag_value(i, arg);
        const auto count = e2c::util::parse_int(value);
        e2c::require_input(count.has_value() && *count > 0,
                           "--jobs must be an integer > 0, got '" + value +
                               "' (--jobs)");
        jobs = static_cast<std::size_t>(*count);
      } else if (arg == "--out") {
        out_path = flag_value(i, arg);
      } else if (arg == "--help") {
        std::cout << "usage: bench_serve [--jobs N] [--out FILE.json]\n";
        return 0;
      } else {
        std::cerr << "bench_serve: unknown argument '" << arg << "'\n";
        return 2;
      }
    }

    const char* tmp = std::getenv("TMPDIR");
    const std::string work_dir = tmp != nullptr ? tmp : "/tmp";
    const std::string socket_path =
        work_dir + "/e2c_bench_serve_" + std::to_string(::getpid()) + ".sock";

    std::cout << "==== serve: " << jobs << " jobs per lane, " << kWorkers
              << " workers ====\n";
    const Lane spawn = run_spawn_lane(jobs, work_dir);
    print_lane(spawn);
    const Lane serve = run_serve_lane(jobs, socket_path);
    print_lane(serve);

    const double speedup =
        spawn.jobs_per_sec > 0.0 ? serve.jobs_per_sec / spawn.jobs_per_sec : 0.0;
    std::cout << "serve/spawn speedup = " << speedup << "x\n";
    write_json(out_path, jobs, spawn, serve, speedup);
    std::cout << "wrote " << out_path << "\n";
    return 0;
  } catch (const e2c::InputError& error) {
    std::cerr << "bench_serve: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "bench_serve: " << error.what() << "\n";
    return 1;
  }
}
