// Shared scaffolding for the figure-reproduction benches: consistent spec
// defaults, chart + CSV printing, and shape-check reporting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "viz/bar_chart.hpp"

namespace e2c::bench {

/// Default sweep parameters used by the figure benches. 20 replications of a
/// 300-second arrival window keep each bench under a few seconds while
/// giving tight confidence intervals.
inline exp::ExperimentSpec figure_spec(sched::SystemConfig system,
                                       std::vector<std::string> policies) {
  exp::ExperimentSpec spec;
  spec.system = std::move(system);
  spec.policies = std::move(policies);
  spec.intensities = {workload::Intensity::kLow, workload::Intensity::kMedium,
                      workload::Intensity::kHigh};
  spec.replications = 20;
  spec.duration = 300.0;
  spec.base_seed = 20230607;  // arbitrary fixed seed for reproducibility
  return spec;
}

/// Prints the figure: title banner, grouped bar chart, CSV rows.
inline void print_figure(const exp::ExperimentResult& result, const std::string& title) {
  std::cout << "==== " << title << " ====\n\n";
  std::cout << viz::render_bar_chart(exp::completion_chart(result, title)) << "\n";
  std::cout << util::to_csv(exp::result_csv(result)) << "\n";
}

/// Reports one qualitative shape check (paper-vs-measured) and returns
/// whether it held.
inline bool check(bool condition, const std::string& what) {
  std::cout << (condition ? "[shape OK]   " : "[shape FAIL] ") << what << "\n";
  return condition;
}

/// Peak resident set size (VmHWM) of this process in kB; 0 where /proc is
/// unavailable (non-Linux). Megarun-class benches report it so CI can catch
/// a layout change that silently doubles the per-task footprint.
inline long peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  long kb = 0;
  while (std::getline(status, line)) {
    if (std::sscanf(line.c_str(), "VmHWM: %ld kB", &kb) == 1) return kb;
  }
  return 0;
}

/// Nanoseconds of wallclock per processed event; 0 for an empty run.
inline double ns_per_event(double seconds, std::uint64_t events) {
  return events == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(events);
}

}  // namespace e2c::bench
