// Shared scaffolding for the figure-reproduction benches: consistent spec
// defaults, chart + CSV printing, and shape-check reporting.
#pragma once

#include <iostream>
#include <string>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "viz/bar_chart.hpp"

namespace e2c::bench {

/// Default sweep parameters used by the figure benches. 20 replications of a
/// 300-second arrival window keep each bench under a few seconds while
/// giving tight confidence intervals.
inline exp::ExperimentSpec figure_spec(sched::SystemConfig system,
                                       std::vector<std::string> policies) {
  exp::ExperimentSpec spec;
  spec.system = std::move(system);
  spec.policies = std::move(policies);
  spec.intensities = {workload::Intensity::kLow, workload::Intensity::kMedium,
                      workload::Intensity::kHigh};
  spec.replications = 20;
  spec.duration = 300.0;
  spec.base_seed = 20230607;  // arbitrary fixed seed for reproducibility
  return spec;
}

/// Prints the figure: title banner, grouped bar chart, CSV rows.
inline void print_figure(const exp::ExperimentResult& result, const std::string& title) {
  std::cout << "==== " << title << " ====\n\n";
  std::cout << viz::render_bar_chart(exp::completion_chart(result, title)) << "\n";
  std::cout << util::to_csv(exp::result_csv(result)) << "\n";
}

/// Reports one qualitative shape check (paper-vs-measured) and returns
/// whether it held.
inline bool check(bool condition, const std::string& what) {
  std::cout << (condition ? "[shape OK]   " : "[shape FAIL] ") << what << "\n";
  return condition;
}

}  // namespace e2c::bench
