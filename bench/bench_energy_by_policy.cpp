// Ablation bench for the paper's energy-measurement feature (§3: "measuring
// energy consumption and other output-related metrics"): total and dynamic
// energy plus energy-per-completed-task for every policy on the
// heterogeneous system, at low and medium intensity.
//
// Two energy views, both reported:
//  - total energy (busy + idle draw over the horizon) — what the
//    electricity bill sees;
//  - dynamic energy (execution only) — what the mapping decision controls,
//    and the quantity ELARE/FELARE optimize.
//
// Expected shape:
//  - at LOW intensity there is slack, so ELARE/FELARE route work to frugal
//    parts and cut dynamic energy per completed task well below the
//    completion-driven policies, at no completion cost;
//  - at MEDIUM intensity the frugal machines are also the fast ones in this
//    scenario, so occupying them with energy-motivated slow work displaces
//    tasks onto the hungry GPU/CPU — the energy advantage shrinks or
//    inverts while completion stays high. The bench surfaces this
//    displacement effect rather than hiding it.
#include "bench_common.hpp"

int main() {
  using namespace e2c;
  using workload::Intensity;

  auto spec = bench::figure_spec(exp::heterogeneous_classroom(2),
                                 {"FCFS", "MECT", "MM", "ELARE", "FELARE"});
  spec.intensities = {Intensity::kLow, Intensity::kMedium};
  const auto result = exp::run_experiment(spec);

  auto dynamic_per_task = [&](const std::string& policy, Intensity intensity) {
    return result.cell(policy, intensity).mean_of([](const reports::Metrics& m) {
      return m.dynamic_energy_per_completed_task;
    });
  };

  std::cout << "==== energy ablation — heterogeneous system ====\n\n";
  std::cout << "policy,intensity,completion_percent,total_energy_kJ,dynamic_energy_kJ,"
               "dynamic_energy_per_completed_task_J\n";
  for (Intensity intensity : spec.intensities) {
    for (const std::string& policy : spec.policies) {
      const auto& cell = result.cell(policy, intensity);
      const double dynamic_kj =
          cell.mean_of([](const reports::Metrics& m) { return m.dynamic_energy_joules; }) /
          1000.0;
      std::cout << policy << "," << workload::intensity_name(intensity) << ","
                << util::format_fixed(cell.mean_completion_percent(), 2) << ","
                << util::format_fixed(cell.mean_energy_joules() / 1000.0, 2) << ","
                << util::format_fixed(dynamic_kj, 2) << ","
                << util::format_fixed(dynamic_per_task(policy, intensity), 1) << "\n";
    }
  }
  std::cout << "\n";

  bool ok = true;
  // Low intensity: the energy-aware policies exploit the slack.
  for (const std::string policy : {"ELARE", "FELARE"}) {
    ok &= bench::check(
        dynamic_per_task(policy, Intensity::kLow) <
            0.8 * dynamic_per_task("MECT", Intensity::kLow),
        policy + " cuts dynamic energy per task >20% below MECT at low intensity");
    ok &= bench::check(
        result.cell(policy, Intensity::kLow).mean_completion_percent() > 99.0,
        policy + ": the low-intensity energy saving costs no completion");
  }
  // Medium intensity: displacement erodes the advantage but the policies
  // still complete nearly everything and stay far below FCFS's energy.
  ok &= bench::check(dynamic_per_task("ELARE", Intensity::kMedium) <
                         dynamic_per_task("FCFS", Intensity::kMedium),
                     "ELARE spends less dynamic energy per task than FCFS at medium");
  ok &= bench::check(
      result.cell("ELARE", Intensity::kMedium).mean_completion_percent() > 90.0,
      "ELARE completion stays high at medium intensity");
  for (const std::string& policy : spec.policies) {
    ok &= bench::check(result.cell(policy, Intensity::kMedium).mean_energy_joules() > 0.0,
                       policy + ": energy accounting is live");
  }
  return ok ? 0 : 1;
}
