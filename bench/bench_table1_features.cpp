// Reproduces Table 1 of the paper: positioning of E2C against other
// simulators on three axes — GUI, heterogeneous-computing support, workload
// generator. The other simulators' rows are literature claims we cannot
// execute; E2C's row, however, is machine-checkable: this bench *proves*
// each claimed feature by exercising it.
#include <iostream>

#include "exp/scenario.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/string_util.hpp"
#include "viz/controller.hpp"
#include "workload/generator.hpp"

namespace {

bool check(bool condition, const std::string& what) {
  std::cout << (condition ? "[feature OK]   " : "[feature FAIL] ") << what << "\n";
  return condition;
}

}  // namespace

int main() {
  using namespace e2c;

  std::cout << "==== Table 1 — positioning of E2C (machine-checked row) ====\n\n"
            << "simulator    | language | GUI | heterogeneous | workload generator\n"
            << "CloudSim     | Java     |  x  |       x       | limited   (literature)\n"
            << "iFogSim      | Java     |  x  |       x       | limited   (literature)\n"
            << "EdgeCloudSim | Java     |  x  |       x       | yes       (literature)\n"
            << "iCanCloud    | C++      | yes |       x       | x         (literature)\n"
            << "TeachCloud   | Java     | yes |       x       | limited   (literature)\n"
            << "E2C          | C++ (*)  | yes |      yes      | yes       (checked below)\n"
            << "(*) this reproduction; the original E2C is Python.\n\n";

  bool ok = true;

  // --- GUI: the control surface behind the buttons exists and works.
  {
    auto factory = [] {
      auto system = exp::heterogeneous_classroom();
      const auto machine_types = exp::machine_types_of(system);
      const auto generator = workload::config_for_intensity(
          system.eet, machine_types, workload::Intensity::kLow, 20.0, 1);
      auto simulation =
          std::make_unique<sched::Simulation>(system, sched::make_policy("MECT"));
      simulation->load(workload::generate_workload(system.eet, generator));
      return simulation;
    };
    viz::SimulationController controller(factory);
    controller.set_sleeper([](std::chrono::duration<double>) {});
    const bool stepped = controller.increment();       // the "Increment" button
    controller.play();                                 // the "Play" button
    const bool finished = controller.state() == viz::RunState::kFinished;
    controller.reset();                                // the "Reset" button
    const bool reset_ok = controller.state() == viz::RunState::kReady;
    ok &= check(stepped && finished && reset_ok,
                "GUI control surface: Play / Increment / Reset / speed dial");
  }

  // --- Heterogeneous computing: inconsistent EET accepted and exploited.
  {
    const auto system = exp::heterogeneous_classroom();
    const bool inconsistent = !system.eet.is_consistent() && !system.eet.is_homogeneous();
    ok &= check(inconsistent,
                "inconsistent heterogeneity (GPU/FPGA/ASIC) modeled via the EET matrix");
    // And the homogeneous degenerate case also works (CloudSim-style).
    ok &= check(exp::homogeneous_classroom().eet.is_homogeneous(),
                "homogeneous systems as the degenerate EET case");
  }

  // --- Workload generator: distributions, intensities, deadlines.
  {
    const auto system = exp::heterogeneous_classroom();
    const auto machine_types = exp::machine_types_of(system);
    bool generated_all = true;
    for (auto kind : {workload::ArrivalKind::kPoisson, workload::ArrivalKind::kUniform,
                      workload::ArrivalKind::kNormal, workload::ArrivalKind::kConstant,
                      workload::ArrivalKind::kBurst}) {
      auto generator = workload::config_for_intensity(
          system.eet, machine_types, workload::Intensity::kMedium, 50.0, 2);
      generator.arrival = kind;
      const auto trace = workload::generate_workload(system.eet, generator);
      generated_all &= !trace.empty();
    }
    ok &= check(generated_all,
                "workload generator: 5 arrival processes x calibrated intensities");
  }

  // --- Pluggable scheduling: the full built-in roster resolves.
  {
    bool all = true;
    for (const char* name :
         {"FCFS", "MEET", "MECT", "MM", "MMU", "MSD", "ELARE", "FELARE"}) {
      all &= sched::PolicyRegistry::instance().contains(name);
    }
    ok &= check(all, "all paper policies registered (immediate + batch, incl. ELARE/FELARE)");
  }
  return ok ? 0 : 1;
}
