// Ablation bench for the machine-queue-size knob the GUI exposes for batch
// policies (Fig. 3: "the machine queue size ... can be changed for batch
// policies"). Sweeps the queue capacity and reports completion percentage.
//
// Expected shape: the knob matters — completion moves by several points as
// capacity changes. At overload, more staging capacity lets feasible work
// wait out the burst instead of being cancelled in the batch queue, so very
// small queues lose completion; returns diminish once the queue can absorb a
// typical burst (queue 8 vs 16 differ little).
#include "bench_common.hpp"

int main() {
  using namespace e2c;
  using workload::Intensity;

  std::cout << "==== machine-queue-size ablation — MM on heterogeneous, high intensity"
               " ====\n\nqueue_size,completion_percent,ci95\n";

  bool ok = true;
  std::vector<double> by_queue;
  const std::vector<std::size_t> sizes{1, 2, 4, 8, 16};
  for (const std::size_t queue_size : sizes) {
    auto spec = bench::figure_spec(exp::heterogeneous_classroom(queue_size), {"MM"});
    spec.intensities = {Intensity::kHigh};
    const auto result = exp::run_experiment(spec);
    const auto& cell = result.cell("MM", Intensity::kHigh);
    by_queue.push_back(cell.mean_completion_percent());
    std::cout << queue_size << "," << util::format_fixed(cell.mean_completion_percent(), 2)
              << "," << util::format_fixed(cell.ci95_completion_percent(), 2) << "\n";
  }
  std::cout << "\n";

  const double best = *std::max_element(by_queue.begin(), by_queue.end());
  const double worst = *std::min_element(by_queue.begin(), by_queue.end());
  ok &= bench::check(best - worst > 3.0,
                     "the queue-size knob materially changes completion (>3 points)");
  ok &= bench::check(std::abs(by_queue[4] - by_queue[3]) < 3.0,
                     "returns diminish once the queue absorbs a burst (8 vs 16)");
  ok &= bench::check(by_queue[0] < best,
                     "a single waiting slot is not the best setting at overload");
  return ok ? 0 : 1;
}
