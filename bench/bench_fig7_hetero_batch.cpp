// Reproduces Figure 7 of the paper: completion percentage of the batch
// scheduling policies (MM, MMU, MSD) on a HETEROGENEOUS system at low /
// medium / high arrival intensity (machine queue size 2, per Fig. 3's batch
// configuration).
//
// Expected shape (paper §4): completion % decreases with intensity, and the
// batch policies outperform immediate scheduling (FCFS is included as the
// immediate reference series to exhibit the cross-mode comparison).
#include "bench_common.hpp"

int main() {
  using namespace e2c;
  using workload::Intensity;

  const auto spec = bench::figure_spec(exp::heterogeneous_classroom(/*queue=*/2),
                                       {"MM", "MMU", "MSD", "FCFS"});
  const auto result = exp::run_experiment(spec);
  bench::print_figure(result,
                      "Fig. 7 — batch policies, heterogeneous system (queue size 2)");

  bool ok = true;
  for (const std::string policy : {"MM", "MMU", "MSD"}) {
    ok &= bench::check(
        result.cell(policy, Intensity::kLow).mean_completion_percent() >
            result.cell(policy, Intensity::kHigh).mean_completion_percent(),
        std::string(policy) + ": completion drops from low to high intensity");
    for (Intensity intensity : {Intensity::kMedium, Intensity::kHigh}) {
      ok &= bench::check(
          result.cell(policy, intensity).mean_completion_percent() >
              result.cell("FCFS", intensity).mean_completion_percent(),
          std::string(policy) + " (batch) beats FCFS (immediate) at " +
              workload::intensity_name(intensity) + " intensity");
    }
  }
  return ok ? 0 : 1;
}
