// Ablation bench for the elasticity substrate — the "scalability" dimension
// the paper's abstract lists among the system-level solutions students
// examine with E2C.
//
// Compares a fixed 4-machine homogeneous fleet against the same fleet with
// the autoscaler enabled (one machine always on, three elastic) at low and
// high intensity. The homogeneous fleet makes the scale-in decision
// unambiguous — every parked machine is interchangeable with the survivors.
//
// Expected shape: at LOW intensity the autoscaler parks idle machines and
// cuts total energy substantially at (near) zero completion cost; at HIGH
// intensity it powers everything on, converging to the static system's
// completion while still saving the boot-lag energy slivers.
#include "bench_common.hpp"
#include "reports/metrics.hpp"
#include "sched/registry.hpp"
#include "workload/generator.hpp"

namespace {

struct CellOutcome {
  double completion = 0.0;
  double energy_kj = 0.0;
};

CellOutcome run_cell(const e2c::sched::SystemConfig& base, bool elastic,
                     e2c::workload::Intensity intensity, std::size_t replications) {
  using namespace e2c;
  const auto machine_types = exp::machine_types_of(base);
  CellOutcome outcome;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    auto config = base;
    if (elastic) {
      config.autoscaler.enabled = true;
      config.autoscaler.interval = 1.0;
      config.autoscaler.queue_high = 2;
      config.autoscaler.queue_low = 0;
      config.autoscaler.boot_delay = 1.0;
      config.autoscaler.min_online = 1;
      config.autoscaler.initially_offline = {1, 2, 3};
    }
    const auto generator = workload::config_for_intensity(
        config.eet, machine_types, intensity, 150.0, 800 + rep);
    const auto trace = workload::generate_workload(config.eet, generator);
    sched::Simulation simulation(config, sched::make_policy("MM"));
    simulation.load(trace);
    simulation.run();
    outcome.completion += simulation.counters().completion_percent();
    outcome.energy_kj += simulation.total_energy_joules() / 1000.0;
  }
  outcome.completion /= static_cast<double>(replications);
  outcome.energy_kj /= static_cast<double>(replications);
  return outcome;
}

}  // namespace

int main() {
  using namespace e2c;
  using workload::Intensity;

  const auto base = exp::homogeneous_classroom(2);
  constexpr std::size_t kReps = 12;

  std::cout << "==== elasticity ablation — MM, autoscaler vs static fleet ====\n\n";
  std::cout << "intensity,config,completion_percent,energy_kJ\n";
  bool ok = true;
  for (Intensity intensity : {Intensity::kLow, Intensity::kHigh}) {
    const CellOutcome fixed = run_cell(base, false, intensity, kReps);
    const CellOutcome elastic = run_cell(base, true, intensity, kReps);
    for (const auto& [label, cell] :
         {std::pair{"static", fixed}, std::pair{"elastic", elastic}}) {
      std::cout << workload::intensity_name(intensity) << "," << label << ","
                << util::format_fixed(cell.completion, 2) << ","
                << util::format_fixed(cell.energy_kj, 2) << "\n";
    }
    if (intensity == Intensity::kLow) {
      ok &= bench::check(elastic.energy_kj < 0.8 * fixed.energy_kj,
                         "low intensity: autoscaler cuts energy by >20%");
      ok &= bench::check(elastic.completion > fixed.completion - 10.0,
                         "low intensity: the saving costs at most a few completions");
    } else {
      ok &= bench::check(elastic.completion > 0.75 * fixed.completion,
                         "high intensity: the elastic fleet scales out and keeps pace");
      ok &= bench::check(elastic.energy_kj <= fixed.energy_kj * 1.05,
                         "high intensity: elasticity never costs extra energy");
    }
  }
  std::cout << "\n";
  return ok ? 0 : 1;
}
