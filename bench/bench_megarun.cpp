// Megarun: one 10M-task single simulation per policy (MM + ELARE), the
// stress lane for the SoA task table + arena calendar. Unlike the overload
// regime of bench_core_hotpath (rho = 1.3, scheduler-bound), the megarun
// holds offered load just under capacity (rho = 0.9) so the discrete-event
// core — calendar pushes/pops, SoA column writes, terminal bookkeeping —
// dominates, and uses the shared-trace load path so the calendar stays at
// in-system size instead of trace size.
//
// Each policy also gets a short calibration run (tasks/100) on the same
// host; the mega/calibration events-per-second ratio is machine-independent
// and is what tools/ci.sh gates: the SoA core must not fall off a cliff
// when the table is 100x larger than cache. Every lane reports the best of
// kRepeats runs so the ratio reflects the code, not scheduler noise.
//
//   bench_megarun [--tasks N] [--duration SECONDS] [--out FILE.json]
//
// Exit codes: 0 success, 1 internal error, 2 invalid input.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/scenario.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "workload/generator.hpp"

namespace {

struct Row {
  std::string policy;
  std::string lane;  // "calibration" | "mega"
  std::size_t tasks_requested = 0;
  std::size_t tasks = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  double completion_percent = 0.0;
  /// Process-lifetime high-water mark (VmHWM) at the end of the lane. VmHWM
  /// never goes down, so this is NOT the lane's own footprint: any lane that
  /// runs after a bigger one just re-reports the bigger lane's peak.
  long peak_rss_kb = 0;
  /// How much this lane raised the process high-water mark (VmHWM after
  /// minus VmHWM before, best across repeats). 0 means the lane fit inside
  /// the footprint already established by earlier lanes. This is the
  /// per-lane signal; lanes are also ordered smallest-first (all
  /// calibrations, then all megas) so the small lanes report their own
  /// footprint instead of a predecessor's.
  long rss_delta_kb = 0;
};

/// Offered load just under capacity: the batch queue drains every round, so
/// throughput measures the DES core, not the mapper's backlog behavior.
constexpr double kRho = 0.9;

/// Each lane runs this many times and reports its fastest repetition. The
/// calibration lane in particular finishes in milliseconds, where one
/// scheduler hiccup on a shared host can halve the measured events/s — and
/// with it the scaling ratio the CI gate compares. Best-of-N measures the
/// code, not the host's worst moment.
constexpr int kRepeats = 3;

Row run_once(const std::string& policy_name, const char* lane, std::size_t task_count,
             double duration_override) {
  const long rss_before = e2c::bench::peak_rss_kb();
  e2c::sched::SystemConfig config = e2c::exp::heterogeneous_classroom(2);
  const auto machine_types = e2c::exp::machine_types_of(config);

  auto generator = e2c::workload::config_for_offered_load(
      config.eet, machine_types, kRho, /*duration=*/1.0, /*seed=*/7);
  if (duration_override > 0.0) {
    generator.rate = static_cast<double>(task_count) / duration_override;
    generator.duration = duration_override;
  } else {
    generator.duration = static_cast<double>(task_count) / generator.rate;
  }
  auto workload = std::make_shared<const e2c::workload::Workload>(
      e2c::workload::generate_workload(config.eet, generator));

  Row row;
  row.policy = policy_name;
  row.lane = lane;
  row.tasks_requested = task_count;
  row.tasks = workload->size();

  e2c::sched::Simulation simulation(std::move(config),
                                    e2c::sched::make_policy(policy_name));
  simulation.load(std::move(workload));

  const auto start = std::chrono::steady_clock::now();
  simulation.run();
  const auto stop = std::chrono::steady_clock::now();

  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.events = simulation.engine().processed_count();
  if (row.seconds > 0.0) {
    row.events_per_sec = static_cast<double>(row.events) / row.seconds;
  }
  row.ns_per_event = e2c::bench::ns_per_event(row.seconds, row.events);
  row.completion_percent = simulation.counters().completion_percent();
  row.peak_rss_kb = e2c::bench::peak_rss_kb();
  row.rss_delta_kb = std::max(0L, row.peak_rss_kb - rss_before);
  return row;
}

/// Best (highest events/s) of kRepeats identical runs.
Row run_one(const std::string& policy_name, const char* lane, std::size_t task_count,
            double duration_override) {
  Row best = run_once(policy_name, lane, task_count, duration_override);
  // rss_delta_kb is taken as the max across repeats, not from the fastest
  // repeat: after the first repeat the high-water mark is already set, so
  // later repeats legitimately report a delta of 0.
  long rss_delta = best.rss_delta_kb;
  for (int rep = 1; rep < kRepeats; ++rep) {
    const Row row = run_once(policy_name, lane, task_count, duration_override);
    rss_delta = std::max(rss_delta, row.rss_delta_kb);
    if (row.events_per_sec > best.events_per_sec) best = row;
  }
  best.rss_delta_kb = rss_delta;
  return best;
}

struct Scaling {
  std::string policy;
  double scaling_ratio = 0.0;  ///< mega events/s over calibration events/s
};

void write_json(const std::string& path, std::size_t tasks, double duration,
                const std::vector<Row>& rows, const std::vector<Scaling>& scalings) {
  std::ofstream out(path);
  if (!out.good()) throw e2c::IoError("cannot write " + path);
  out << "{\n  \"bench\": \"megarun\",\n  \"tasks\": " << tasks
      << ",\n  \"duration\": " << duration << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"policy\": \"" << row.policy << "\", \"lane\": \"" << row.lane
        << "\", \"tasks_requested\": " << row.tasks_requested
        << ", \"tasks\": " << row.tasks << ", \"events\": " << row.events
        << ", \"seconds\": " << row.seconds
        << ", \"events_per_sec\": " << row.events_per_sec
        << ", \"ns_per_event\": " << row.ns_per_event
        << ", \"completion_percent\": " << row.completion_percent
        << ", \"peak_rss_kb\": " << row.peak_rss_kb
        << ", \"rss_delta_kb\": " << row.rss_delta_kb << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"scaling\": [\n";
  for (std::size_t i = 0; i < scalings.size(); ++i) {
    out << "    {\"policy\": \"" << scalings[i].policy
        << "\", \"scaling_ratio\": " << scalings[i].scaling_ratio << "}"
        << (i + 1 < scalings.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"peak_rss_kb\": " << e2c::bench::peak_rss_kb() << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t tasks = 10'000'000;
  double duration = 0.0;  // 0 = derive from rho
  std::string out_path = "BENCH_megarun.json";
  try {
    const auto flag_value = [&](int& i, const std::string& flag) {
      e2c::require_input(i + 1 < argc, "missing value for " + flag);
      return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--tasks") {
        const std::string value = flag_value(i, arg);
        const auto count = e2c::util::parse_int(value);
        e2c::require_input(count.has_value() && *count > 0,
                           "--tasks must be an integer > 0, got '" + value +
                               "' (--tasks)");
        tasks = static_cast<std::size_t>(*count);
      } else if (arg == "--duration") {
        const std::string value = flag_value(i, arg);
        const auto seconds = e2c::util::parse_double(value);
        e2c::require_input(seconds.has_value() && *seconds > 0.0,
                           "--duration must be a number of seconds > 0, got '" +
                               value + "' (--duration)");
        duration = *seconds;
      } else if (arg == "--out") {
        out_path = flag_value(i, arg);
      } else if (arg == "--help") {
        std::cout << "usage: bench_megarun [--tasks N] [--duration SECONDS] "
                     "[--out FILE.json]\n";
        return 0;
      } else {
        std::cerr << "bench_megarun: unknown argument '" << arg << "'\n";
        return 2;
      }
    }

    const std::size_t calibration_tasks = std::max<std::size_t>(tasks / 100, 1000);
    const std::vector<std::string> policies = {"MM", "ELARE"};
    std::vector<Row> rows;
    std::vector<Scaling> scalings;
    std::cout << "==== megarun: " << tasks << " tasks per policy ====\n";
    const auto print_row = [](const Row& row) {
      std::cout << row.policy << " (" << row.lane << ") tasks=" << row.tasks
                << " events=" << row.events << " seconds=" << row.seconds
                << " events/sec=" << static_cast<std::uint64_t>(row.events_per_sec)
                << " ns/event=" << row.ns_per_event
                << " completion=" << row.completion_percent << "%"
                << " peak_rss_kb=" << row.peak_rss_kb
                << " rss_delta_kb=" << row.rss_delta_kb << "\n";
    };
    // All calibrations before any mega lane: VmHWM is a process-lifetime
    // high-water mark, so a calibration run after a 10M-task mega would
    // re-report the mega's peak instead of its own footprint.
    std::vector<Row> calibrations;
    for (const auto& policy : policies) {
      calibrations.push_back(
          run_one(policy, "calibration", calibration_tasks,
                  duration > 0.0 ? duration * static_cast<double>(calibration_tasks) /
                                       static_cast<double>(tasks)
                                 : 0.0));
      print_row(calibrations.back());
      rows.push_back(calibrations.back());
    }
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const Row mega = run_one(policies[i], "mega", tasks, duration);
      print_row(mega);
      rows.push_back(mega);
      Scaling scaling;
      scaling.policy = policies[i];
      if (calibrations[i].events_per_sec > 0.0) {
        scaling.scaling_ratio = mega.events_per_sec / calibrations[i].events_per_sec;
      }
      std::cout << policies[i] << " scaling ratio (mega/calibration) = "
                << scaling.scaling_ratio << "\n";
      scalings.push_back(scaling);
    }
    write_json(out_path, tasks, duration, rows, scalings);
    std::cout << "wrote " << out_path << "\n";
    return 0;
  } catch (const e2c::InputError& error) {
    std::cerr << "bench_megarun: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "bench_megarun: " << error.what() << "\n";
    return 1;
  }
}
