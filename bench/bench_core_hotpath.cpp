// Core hot-path benchmark: raw discrete-event throughput of the simulation
// kernel (calendar + dispatch + scheduler rounds), the number every large
// sweep multiplies by policies x intensities x replications.
//
// Runs one immediate and one batch policy over generated workloads of
// increasing size, reports events/sec and ns/event, and writes the results
// as BENCH_core_hotpath.json so CI can track the perf trajectory per PR.
//
//   bench_core_hotpath [--sizes 10000,100000,1000000] [--out FILE.json]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/error.hpp"
#include "workload/generator.hpp"

namespace {

struct Row {
  std::string policy;
  std::string mode;
  std::size_t tasks_requested = 0;
  std::size_t tasks = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  double completion_percent = 0.0;
};

Row run_one(const std::string& policy_name, std::size_t task_count) {
  e2c::sched::SystemConfig config = e2c::exp::heterogeneous_classroom(2);
  const auto machine_types = e2c::exp::machine_types_of(config);

  // Offered load 1.3 keeps every machine saturated (so the batch queue and
  // deadline machinery stay busy) while deadlines bound the backlog.
  auto generator = e2c::workload::config_for_offered_load(
      config.eet, machine_types, /*rho=*/1.3, /*duration=*/1.0, /*seed=*/7);
  generator.duration = static_cast<double>(task_count) / generator.rate;
  const auto workload = e2c::workload::generate_workload(config.eet, generator);

  auto policy = e2c::sched::make_policy(policy_name);
  Row row;
  row.policy = policy_name;
  row.mode = policy->mode() == e2c::sched::PolicyMode::kImmediate ? "immediate" : "batch";
  row.tasks_requested = task_count;
  row.tasks = workload.size();

  e2c::sched::Simulation simulation(std::move(config), std::move(policy));
  simulation.load(workload);

  const auto start = std::chrono::steady_clock::now();
  simulation.run();
  const auto stop = std::chrono::steady_clock::now();

  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.events = simulation.engine().processed_count();
  if (row.seconds > 0.0) {
    row.events_per_sec = static_cast<double>(row.events) / row.seconds;
    row.ns_per_event = row.seconds * 1e9 / static_cast<double>(row.events);
  }
  row.completion_percent = simulation.counters().completion_percent();
  return row;
}

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const long long value = std::stoll(token);
    e2c::require_input(value > 0, "--sizes entries must be positive integers");
    sizes.push_back(static_cast<std::size_t>(value));
  }
  e2c::require_input(!sizes.empty(), "--sizes needs at least one entry");
  return sizes;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  if (!out.good()) throw e2c::IoError("cannot write " + path);
  out << "{\n  \"bench\": \"core_hotpath\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"policy\": \"" << row.policy << "\", \"mode\": \"" << row.mode
        << "\", \"tasks_requested\": " << row.tasks_requested
        << ", \"tasks\": " << row.tasks << ", \"events\": " << row.events
        << ", \"seconds\": " << row.seconds
        << ", \"events_per_sec\": " << row.events_per_sec
        << ", \"ns_per_event\": " << row.ns_per_event
        << ", \"completion_percent\": " << row.completion_percent << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes = {10'000, 100'000, 1'000'000};
  std::string out_path = "BENCH_core_hotpath.json";
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--sizes" && i + 1 < argc) {
        sizes = parse_sizes(argv[++i]);
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--help") {
        std::cout << "usage: bench_core_hotpath [--sizes N,N,...] [--out FILE.json]\n";
        return 0;
      } else {
        std::cerr << "bench_core_hotpath: unknown argument '" << arg << "'\n";
        return 2;
      }
    }

    std::vector<Row> rows;
    std::cout << "==== core hot path: events/sec by policy and size ====\n";
    for (const char* policy : {"MECT", "MM"}) {
      for (std::size_t size : sizes) {
        const Row row = run_one(policy, size);
        std::cout << row.policy << " (" << row.mode << ") tasks=" << row.tasks
                  << " events=" << row.events << " seconds=" << row.seconds
                  << " events/sec=" << static_cast<std::uint64_t>(row.events_per_sec)
                  << " ns/event=" << row.ns_per_event
                  << " completion=" << row.completion_percent << "%\n";
        rows.push_back(row);
      }
    }
    write_json(out_path, rows);
    std::cout << "wrote " << out_path << "\n";
    return 0;
  } catch (const e2c::InputError& error) {
    std::cerr << "bench_core_hotpath: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "bench_core_hotpath: " << error.what() << "\n";
    return 1;
  }
}
