// Reproduces Figure 8a of the paper: the user-experience survey bars
// (installation, intuitive GUI, ease of use, reports, custom scheduling,
// recommendation), overall and split by gender.
//
// The respondent data is the bundled synthetic set calibrated to the paper's
// published aggregates (human data cannot be re-collected; see DESIGN.md).
// This bench runs the actual aggregation pipeline over it and checks every
// number the paper quotes.
#include <cmath>
#include <iostream>

#include "edu/survey.hpp"
#include "util/string_util.hpp"
#include "viz/bar_chart.hpp"

namespace {

bool check(bool condition, const std::string& what) {
  std::cout << (condition ? "[value OK]   " : "[value FAIL] ") << what << "\n";
  return condition;
}

bool near(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

}  // namespace

int main() {
  using namespace e2c;

  const auto dataset = edu::SurveyDataset::bundled();
  const auto summary = dataset.summarize();

  std::cout << "==== Fig. 8a — user experience with E2C (n=" << dataset.size()
            << ") ====\n\n";

  viz::BarChart chart;
  chart.title = "survey scores (0-10)";
  chart.groups = {"overall", "female", "male"};
  chart.max_value = 10.0;
  chart.unit = "";
  for (const auto& metric : summary.user_experience) {
    chart.series.push_back(
        {metric.metric, {metric.mean, metric.female_mean, metric.male_mean}});
  }
  std::cout << viz::render_bar_chart(chart) << "\n";

  std::cout << "metric,respondents,mean,median,female_mean,male_mean\n";
  for (const auto& metric : summary.user_experience) {
    std::cout << metric.metric << "," << metric.respondents << ","
              << util::format_fixed(metric.mean, 2) << ","
              << util::format_fixed(metric.median, 2) << ","
              << util::format_fixed(metric.female_mean, 2) << ","
              << util::format_fixed(metric.male_mean, 2) << "\n";
  }
  std::cout << "\npaper-vs-measured checks:\n";

  const auto& ux = summary.user_experience;
  auto metric = [&](const std::string& name) -> const edu::MetricAggregate& {
    for (const auto& m : ux) {
      if (m.metric == name) return m;
    }
    throw std::runtime_error("missing metric " + name);
  };

  bool ok = true;
  ok &= check(near(metric("installation").mean, 8.3, 0.05), "installation mean 8.3");
  ok &= check(near(metric("intuitive GUI").mean, 8.35, 0.05), "GUI mean 8.35");
  ok &= check(near(metric("intuitive GUI").female_mean, 9.3, 0.01), "GUI female 9.3");
  ok &= check(near(metric("intuitive GUI").male_mean, 8.0, 0.01), "GUI male 8.0");
  ok &= check(near(metric("ease of use").mean, 8.3, 0.08), "ease-of-use mean 8.3");
  ok &= check(near(metric("reports").mean, 5.7, 0.1),
              "reports mean 5.7 (the paper's lowest score)");
  ok &= check(near(metric("custom scheduling").mean, 8.3, 0.25),
              "custom scheduling mean ~8.3 (graduate students only)");
  ok &= check(metric("custom scheduling").respondents == 9, "9 graduate respondents");
  ok &= check(near(metric("recommend to others").mean, 8.3, 0.05), "recommend mean 8.3");
  ok &= check(near(metric("recommend to others").female_mean, 9.7, 0.01),
              "recommend female 9.7");
  ok &= check(near(summary.male_fraction, 0.739, 0.001), "73.9% male respondents");
  ok &= check(near(summary.programming_years_mean, 3.8, 0.1),
              "programming experience mean 3.8 years");
  ok &= check(summary.programming_years_median == 3.0,
              "programming experience median 3 years");
  // Reports is the weak spot in every cut of the data, as the paper found.
  for (const auto& m : ux) {
    if (m.metric == "reports") continue;
    ok &= check(metric("reports").mean < m.mean, "reports scores below " + m.metric);
  }
  return ok ? 0 : 1;
}
