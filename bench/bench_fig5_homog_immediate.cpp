// Reproduces Figure 5 of the paper: completion percentage of the immediate
// scheduling policies (FCFS, MECT, MEET) on a HOMOGENEOUS system at low /
// medium / high arrival intensity.
//
// Expected shape (paper §4): completion % decreases with intensity; on a
// homogeneous system the EET-aware policies cannot exploit heterogeneity, so
// the three policies bunch together (MEET degenerates: all machines equal).
#include "bench_common.hpp"

int main() {
  using namespace e2c;
  using workload::Intensity;

  const auto spec = bench::figure_spec(exp::homogeneous_classroom(),
                                       {"FCFS", "MECT", "MEET"});
  const auto result = exp::run_experiment(spec);
  bench::print_figure(result, "Fig. 5 — immediate policies, homogeneous system");

  bool ok = true;
  for (const std::string& policy : spec.policies) {
    ok &= bench::check(
        result.cell(policy, Intensity::kLow).mean_completion_percent() >
            result.cell(policy, Intensity::kHigh).mean_completion_percent(),
        policy + ": completion drops from low to high intensity");
    ok &= bench::check(
        result.cell(policy, Intensity::kLow).mean_completion_percent() >= 75.0,
        policy + ": low intensity mostly completes");
  }
  // Homogeneity: MECT and FCFS both reduce to least-loaded-machine logic, so
  // their gap stays small (within 15 points at every intensity).
  for (Intensity intensity :
       {Intensity::kLow, Intensity::kMedium, Intensity::kHigh}) {
    const double gap =
        result.cell("MECT", intensity).mean_completion_percent() -
        result.cell("FCFS", intensity).mean_completion_percent();
    ok &= bench::check(gap > -15.0 && gap < 15.0,
                       std::string("MECT~FCFS bunch together at ") +
                           workload::intensity_name(intensity) + " intensity");
  }
  return ok ? 0 : 1;
}
