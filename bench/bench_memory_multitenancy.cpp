// Ablation bench for the multi-tenant memory substrate — the Edge-MultiAI
// extension the paper cites ([22]: "we extended E2C to simulate the memory
// allocation policies of multi-tenant applications on a homogeneous edge").
//
// A homogeneous edge fleet serves five ML applications whose models must be
// resident in memory; cold starts pay a load penalty. Sweeps machine memory
// and compares eviction policies.
//
// Expected shape: warm hit rate rises with memory; LRU dominates FIFO which
// dominates no-caching; completion percentage follows the hit rate because
// cold-started tasks blow their deadlines under load.
#include "bench_common.hpp"
#include "mem/model_cache.hpp"
#include "sched/registry.hpp"
#include "workload/generator.hpp"

namespace {

struct CellOutcome {
  double completion = 0.0;
  double hit_rate = 0.0;
};

CellOutcome run_cell(double memory_mb, e2c::mem::EvictionPolicy eviction,
                     std::size_t replications) {
  using namespace e2c;
  auto base = exp::homogeneous_classroom(2);
  mem::MemoryModel memory;
  memory.model_mb = {3.0, 3.0, 3.0, 3.0, 3.0};  // five 3 MB models
  memory.load_seconds = {4.0, 4.0, 4.0, 4.0, 4.0};
  memory.machine_memory_mb.assign(base.eet.machine_type_count(), memory_mb);
  memory.eviction = eviction;
  base.memory = memory;

  const auto machine_types = exp::machine_types_of(base);
  CellOutcome outcome;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    const auto generator = workload::config_for_intensity(
        base.eet, machine_types, workload::Intensity::kMedium, 150.0, 600 + rep);
    const auto trace = workload::generate_workload(base.eet, generator);
    sched::Simulation simulation(base, sched::make_policy("MM"));
    simulation.load(trace);
    simulation.run();
    outcome.completion += simulation.counters().completion_percent();
    double hits = 0.0;
    double total = 0.0;
    for (std::size_t m = 0; m < simulation.machine_count(); ++m) {
      const auto* cache = simulation.model_cache(m);
      hits += static_cast<double>(cache->hits());
      total += static_cast<double>(cache->hits() + cache->misses());
    }
    outcome.hit_rate += total > 0.0 ? hits / total : 1.0;
  }
  outcome.completion /= static_cast<double>(replications);
  outcome.hit_rate /= static_cast<double>(replications);
  return outcome;
}

}  // namespace

int main() {
  using namespace e2c;
  constexpr std::size_t kReps = 10;
  const std::vector<double> capacities{3.0, 6.0, 9.0, 15.0};

  std::cout << "==== multi-tenant memory ablation — homogeneous edge, medium intensity"
               " ====\n\nmemory_MB,policy,completion_percent,warm_hit_rate\n";
  std::vector<CellOutcome> lru;
  std::vector<CellOutcome> fifo;
  for (double capacity : capacities) {
    for (auto [name, eviction] :
         {std::pair{"lru", mem::EvictionPolicy::kLru},
          std::pair{"fifo", mem::EvictionPolicy::kFifo},
          std::pair{"none", mem::EvictionPolicy::kNone}}) {
      const CellOutcome cell = run_cell(capacity, eviction, kReps);
      if (eviction == mem::EvictionPolicy::kLru) lru.push_back(cell);
      if (eviction == mem::EvictionPolicy::kFifo) fifo.push_back(cell);
      std::cout << util::format_fixed(capacity, 0) << "," << name << ","
                << util::format_fixed(cell.completion, 2) << ","
                << util::format_fixed(cell.hit_rate, 3) << "\n";
    }
  }
  std::cout << "\n";

  bool ok = true;
  ok &= bench::check(lru.back().hit_rate > lru.front().hit_rate + 0.2,
                     "hit rate rises substantially with machine memory (LRU)");
  // With all five models resident the only misses are each machine's five
  // warm-up loads; at ~35 starts/machine that bounds the rate near 0.85.
  ok &= bench::check(lru.back().hit_rate > 0.7,
                     "all models resident -> most starts are warm");
  ok &= bench::check(lru.back().completion > lru.front().completion,
                     "completion follows the hit rate under deadlines");
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    ok &= bench::check(lru[i].hit_rate >= fifo[i].hit_rate - 0.02,
                       "LRU at least matches FIFO at " +
                           util::format_fixed(capacities[i], 0) + " MB");
  }
  return ok ? 0 : 1;
}
