// Ablation bench for the communication model — the paper's announced future
// work ("we plan to extend E2C with ... various communication paradigms").
//
// Sweeps link bandwidth for a fixed per-task payload on the heterogeneous
// system at medium intensity and reports completion percentage per policy.
//
// Expected shape: completion falls monotonically (within noise) as links
// slow down; at very high bandwidth the results converge to the no-network
// simulation; load-aware policies retain their advantage over FCFS at every
// bandwidth.
#include "bench_common.hpp"
#include "net/comm_model.hpp"
#include "sched/registry.hpp"
#include "workload/generator.hpp"

namespace {

double run_cell(const e2c::sched::SystemConfig& base, double bandwidth_mb_s,
                const std::string& policy, std::size_t replications) {
  using namespace e2c;
  const auto machine_types = exp::machine_types_of(base);
  double total = 0.0;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    auto config = base;
    if (bandwidth_mb_s > 0.0) {
      config.comm = net::CommModel::uniform(
          config.eet.task_type_count(), config.eet.machine_type_count(),
          /*payload_mb=*/8.0, net::LinkSpec{0.01, bandwidth_mb_s});
    }
    const auto generator = workload::config_for_intensity(
        config.eet, machine_types, workload::Intensity::kHigh, 150.0, 700 + rep);
    const auto trace = workload::generate_workload(config.eet, generator);
    sched::Simulation simulation(config, sched::make_policy(policy));
    simulation.load(trace);
    simulation.run();
    total += simulation.counters().completion_percent();
  }
  return total / static_cast<double>(replications);
}

}  // namespace

int main() {
  using namespace e2c;

  const auto base = exp::heterogeneous_classroom(2);
  constexpr std::size_t kReps = 12;
  // 0 = no network model (the base simulator); payload is 8 MB/task.
  const std::vector<double> bandwidths{0.0, 64.0, 8.0, 4.0, 2.0};

  std::cout << "==== communication-overhead ablation — high intensity, 8 MB/task"
               " ====\n\nbandwidth_MBps,FCFS,MECT,MM\n";
  std::vector<double> fcfs;
  std::vector<double> mect;
  std::vector<double> mm;
  for (double bandwidth : bandwidths) {
    fcfs.push_back(run_cell(base, bandwidth, "FCFS", kReps));
    mect.push_back(run_cell(base, bandwidth, "MECT", kReps));
    mm.push_back(run_cell(base, bandwidth, "MM", kReps));
    std::cout << (bandwidth == 0.0 ? std::string("none")
                                   : util::format_fixed(bandwidth, 0))
              << "," << util::format_fixed(fcfs.back(), 2) << ","
              << util::format_fixed(mect.back(), 2) << ","
              << util::format_fixed(mm.back(), 2) << "\n";
  }
  std::cout << "\n";

  bool ok = true;
  ok &= bench::check(std::abs(mect[1] - mect[0]) < 3.0,
                     "fast links converge to the no-network baseline (MECT)");
  ok &= bench::check(mect.back() < mect[0] - 3.0,
                     "slow links visibly cost completions (MECT)");
  ok &= bench::check(mm.back() < mm[0] - 3.0,
                     "slow links visibly cost completions (MM)");
  for (std::size_t i = 0; i < bandwidths.size(); ++i) {
    ok &= bench::check(mect[i] >= fcfs[i] - 1.0,
                       "MECT stays at least at FCFS's level at every bandwidth");
  }
  return ok ? 0 : 1;
}
