// Experiment-throughput benchmark: shared vs per-run sweep data plane.
//
// Runs the same 4-policy x 3-intensity x 10-replication sweep (the shape of
// the paper's figure experiments, on a wide-catalog EET rather than the
// 5x4 classroom) through both DataPlanes:
//
//  - shared: each paired trace generated once per (intensity, replication)
//    and aliased read-only by every policy cell; one Simulation per cell,
//    reset between replications (this PR's default);
//  - per_run: every replication regenerates its trace and constructs a
//    fresh Simulation — the pre-sharing data plane, kept in-tree purely as
//    this benchmark's baseline.
//
// Before timing, the harness asserts both planes emit the bit-identical
// result CSV — a speedup over a plane that computes different numbers would
// be meaningless. Two machine-independent ratios are gated by CI against
// the committed BENCH_experiment_throughput.json:
//
//  - plane_speedup: shared vs per_run replications/s at 1 worker;
//  - parallel_efficiency_4w: the 4-worker/1-worker replications/s ratio of
//    the shared plane, normalized by min(4, hardware cpus) so the number
//    means "fraction of the parallelism this host can physically offer"
//    (a 1-cpu container tops out at speedup 1.0 = efficiency 1.0; a 4-core
//    runner must deliver >= 2.8x to reach 0.7).
//
// Every timed point runs one untimed warmup pass then keeps the best of 3,
// and the default sweep is sized so the 1-worker shared run takes hundreds
// of milliseconds — a single ~14 ms run (the old shape) was noise-dominated
// enough to show 8 workers "faster" than 4 by luck. Peak RSS is recorded
// but not gated.
//
//   bench_experiment_throughput [--reps N] [--out FILE.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "hetero/eet_matrix.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// The sweep under test: a wide heterogeneous task catalog (1024 task types,
/// the comparative-study regime, vs the classroom's 5) on a small
/// accelerator fleet, with a short arrival window per run. That is the
/// sweep-scale shape the shared plane exists for — many short replications
/// where per-run setup (trace regeneration per policy, SystemConfig copies,
/// eager task-vector loads) dominates the wall-clock rather than the event
/// loop. Deadlines are tight (factor 1.0-1.5x mean EET) so runs terminate
/// fast and the in-system population stays small.
e2c::exp::ExperimentSpec sweep_spec(std::size_t replications) {
  e2c::util::Rng rng(0xE2CBE4C11);
  std::vector<std::string> task_names;
  std::vector<std::string> machine_names;
  for (int t = 0; t < 1024; ++t)
    task_names.push_back("heterogeneous-workload-task-type-" + std::to_string(t));
  for (int m = 0; m < 4; ++m)
    machine_names.push_back("edge-accelerator-machine-type-" + std::to_string(m));

  e2c::exp::ExperimentSpec spec;
  spec.system = e2c::sched::make_default_system(
      e2c::hetero::EetMatrix::random(std::move(task_names), std::move(machine_names),
                                     /*base=*/2.0, /*task_range=*/4.0,
                                     /*machine_range=*/4.0, /*inconsistent=*/true, rng),
      /*machine_queue_capacity=*/2);
  spec.policies = {"FCFS", "MEET", "MECT", "FTMIN-EET"};
  spec.intensities = {e2c::workload::Intensity::kLow, e2c::workload::Intensity::kMedium,
                      e2c::workload::Intensity::kHigh};
  spec.replications = replications;
  spec.duration = 1000.0;
  spec.base_seed = 20230607;
  spec.deadline_factor_lo = 1.0;
  spec.deadline_factor_hi = 1.5;
  return spec;
}

struct PlaneResult {
  const char* plane;
  std::size_t workers;
  double seconds;
  double replications_per_sec;
};

std::size_t total_replications(const e2c::exp::ExperimentSpec& spec) {
  return spec.policies.size() * spec.intensities.size() * spec.replications;
}

/// Wall-times one full sweep: one untimed warmup pass (page-cache, malloc
/// arenas, thread spin-up), then best-of-\p passes to shave scheduler noise.
PlaneResult time_sweep(const e2c::exp::ExperimentSpec& spec, std::size_t workers,
                       e2c::exp::DataPlane plane, const char* name, int passes) {
  {
    const auto warmup = e2c::exp::run_experiment(spec, workers, plane);
    e2c::require(warmup.cells.size() == spec.policies.size() * spec.intensities.size(),
                 "bench: warmup sweep produced the wrong cell count");
  }
  double best = 1e300;
  for (int pass = 0; pass < passes; ++pass) {
    const auto start = Clock::now();
    const auto result = e2c::exp::run_experiment(spec, workers, plane);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    e2c::require(result.cells.size() == spec.policies.size() * spec.intensities.size(),
                 "bench: sweep produced the wrong cell count");
    best = std::min(best, seconds);
  }
  return {name, workers, best,
          static_cast<double>(total_replications(spec)) / best};
}

std::string csv_text(const e2c::exp::ExperimentResult& result) {
  return e2c::util::to_csv(e2c::exp::result_csv(result));
}

/// Per-replication cost breakdown at high intensity — where a per-run
/// replication spends its time vs a shared-plane one. Diagnostic only
/// (not part of the JSON): run with --profile when retuning the sweep.
void profile_components(const e2c::exp::ExperimentSpec& spec) {
  using e2c::exp::workload_seed;
  const auto machine_types = e2c::exp::machine_types_of(spec.system);
  const int iters = 200;
  const auto intensity = e2c::workload::Intensity::kHigh;

  auto time_of = [&](const char* label, auto&& body) {
    const auto start = Clock::now();
    for (int i = 0; i < iters; ++i) body(i);
    const double us =
        std::chrono::duration<double>(Clock::now() - start).count() * 1e6 / iters;
    std::printf("  %-28s %8.1f us\n", label, us);
  };

  e2c::workload::GeneratorConfig generator = e2c::workload::config_for_intensity(
      spec.system.eet, machine_types, intensity, spec.duration,
      workload_seed(spec.base_seed, intensity, 0));
  generator.arrival = spec.arrival;
  generator.deadline_factor_lo = spec.deadline_factor_lo;
  generator.deadline_factor_hi = spec.deadline_factor_hi;
  const auto trace = std::make_shared<const e2c::workload::Workload>(
      e2c::workload::generate_workload(spec.system.eet, generator));
  std::printf("profile (high intensity, %zu tasks, %d iters):\n", trace->size(), iters);

  time_of("generate_workload", [&](int) {
    const auto w = e2c::workload::generate_workload(spec.system.eet, generator);
    e2c::require(w.size() == trace->size(), "profile: trace size changed");
  });
  time_of("simulation ctor (copy)", [&](int) {
    e2c::sched::Simulation sim(spec.system, e2c::sched::make_policy("MECT"));
  });
  const auto system = std::make_shared<const e2c::sched::SystemConfig>(spec.system);
  e2c::sched::Simulation sim(system, e2c::sched::make_policy("MECT"));
  time_of("reset + eager load", [&](int) {
    sim.reset(e2c::sched::make_policy("MECT"));
    sim.load(*trace);
  });
  time_of("reset + shared load", [&](int) {
    sim.reset(e2c::sched::make_policy("MECT"));
    sim.load(trace);
  });
  time_of("reset + eager load + run", [&](int) {
    sim.reset(e2c::sched::make_policy("MECT"));
    sim.load(*trace);
    sim.run();
  });
  time_of("reset + shared load + run", [&](int) {
    sim.reset(e2c::sched::make_policy("MECT"));
    sim.load(trace);
    sim.run();
  });
  time_of("compute_metrics", [&](int) {
    const auto metrics = e2c::reports::compute_metrics(sim);
    e2c::require(metrics.total_tasks == trace->size(), "profile: metrics mismatch");
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replications = 50;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      replications = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--profile") {
      profile_components(sweep_spec(replications));
      return 0;
    } else {
      std::cerr << "usage: bench_experiment_throughput [--reps N] [--out FILE.json]\n";
      return 2;
    }
  }

  const e2c::exp::ExperimentSpec spec = sweep_spec(replications);

  // Correctness first: both planes must produce the bit-identical CSV.
  {
    const std::string shared_csv =
        csv_text(e2c::exp::run_experiment(spec, 1, e2c::exp::DataPlane::kShared));
    const std::string per_run_csv =
        csv_text(e2c::exp::run_experiment(spec, 1, e2c::exp::DataPlane::kPerRun));
    e2c::require(shared_csv == per_run_csv,
                 "bench: shared and per-run planes disagree on the result CSV");
    std::cout << "planes agree: " << total_replications(spec)
              << " replications, identical result CSV\n";
  }

  // Headline: single-worker throughput of each plane (the ratio is the
  // machine-independent number CI gates).
  const int kPasses = 3;
  std::vector<PlaneResult> planes;
  planes.push_back(
      time_sweep(spec, 1, e2c::exp::DataPlane::kShared, "shared", kPasses));
  planes.push_back(
      time_sweep(spec, 1, e2c::exp::DataPlane::kPerRun, "per_run", kPasses));
  const double plane_speedup =
      planes[1].seconds > 0.0 ? planes[1].seconds / planes[0].seconds : 0.0;

  // Worker scaling on the shared plane, warmup + best-of-3 like every other
  // point. The raw curve is host-dependent; the gated number is the 4-worker
  // efficiency normalized by the parallelism this host can physically offer.
  std::vector<PlaneResult> scaling;
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    scaling.push_back(
        time_sweep(spec, workers, e2c::exp::DataPlane::kShared, "shared", kPasses));
  }
  const std::size_t cpus =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const double base_rate = scaling[0].replications_per_sec;
  const auto speedup_vs_1w = [&](const PlaneResult& point) {
    return base_rate > 0.0 ? point.replications_per_sec / base_rate : 0.0;
  };
  const double scaling_speedup_4w = speedup_vs_1w(scaling[2]);
  const double parallel_efficiency_4w =
      scaling_speedup_4w / static_cast<double>(std::min<std::size_t>(4, cpus));

  std::ostringstream json;
  json << "{\n  \"bench\": \"experiment_throughput\",\n"
       << "  \"sweep\": {\"policies\": " << spec.policies.size()
       << ", \"intensities\": " << spec.intensities.size()
       << ", \"replications\": " << spec.replications
       << ", \"total_replications\": " << total_replications(spec) << "},\n"
       << "  \"plane_results\": [\n";
  for (std::size_t i = 0; i < planes.size(); ++i) {
    json << "    {\"plane\": \"" << planes[i].plane << "\", \"workers\": "
         << planes[i].workers << ", \"seconds\": " << planes[i].seconds
         << ", \"replications_per_sec\": " << planes[i].replications_per_sec << "}"
         << (i + 1 < planes.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"plane_speedup\": " << plane_speedup << ",\n"
       << "  \"cpus\": " << cpus << ",\n"
       << "  \"worker_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    json << "    {\"plane\": \"shared\", \"workers\": " << scaling[i].workers
         << ", \"seconds\": " << scaling[i].seconds
         << ", \"replications_per_sec\": " << scaling[i].replications_per_sec
         << ", \"speedup\": " << speedup_vs_1w(scaling[i]) << "}"
         << (i + 1 < scaling.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"scaling_speedup_4w\": " << scaling_speedup_4w << ",\n"
       << "  \"parallel_efficiency_4w\": " << parallel_efficiency_4w << ",\n"
       << "  \"peak_rss_kb\": " << e2c::bench::peak_rss_kb() << "\n}\n";

  std::cout << json.str();
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    e2c::require(static_cast<bool>(out), "bench: cannot open " + out_path);
    out << json.str();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
