// Reproduces Figure 8b of the paper (learning-outcome survey bars) plus the
// §5 pre/post quiz result: 3 tasks mapped to 4 heterogeneous machines via
// MEET, MECT, MM and MSD, 12 points, class average 7.6 -> 8.94 (+17.6%).
//
// Two parts:
//   1. the survey aggregation pipeline over the bundled dataset (Fig. 8b);
//   2. the quiz engine itself — ground truth derived from the real policies,
//      grading demonstrated on perfect/naive answer sheets.
#include <cmath>
#include <iostream>

#include "edu/quiz.hpp"
#include "edu/survey.hpp"
#include "util/string_util.hpp"
#include "viz/bar_chart.hpp"

namespace {

bool check(bool condition, const std::string& what) {
  std::cout << (condition ? "[value OK]   " : "[value FAIL] ") << what << "\n";
  return condition;
}

bool near(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

}  // namespace

int main() {
  using namespace e2c;

  const auto summary = edu::SurveyDataset::bundled().summarize();

  std::cout << "==== Fig. 8b — learning outcomes (n=23) ====\n\n";
  viz::BarChart chart;
  chart.title = "learning-outcome scores (0-10)";
  chart.groups = {"overall", "female", "male"};
  chart.max_value = 10.0;
  chart.unit = "";
  for (const auto& metric : summary.learning_outcomes) {
    chart.series.push_back(
        {metric.metric, {metric.mean, metric.female_mean, metric.male_mean}});
  }
  std::cout << viz::render_bar_chart(chart) << "\n";

  bool ok = true;
  auto metric = [&](const std::string& name) -> const edu::MetricAggregate& {
    for (const auto& m : summary.learning_outcomes) {
      if (m.metric == name) return m;
    }
    throw std::runtime_error("missing metric " + name);
  };
  ok &= check(near(metric("scheduling in heterogeneous systems").female_mean, 9.8, 0.01),
              "hetero-scheduling female mean 9.8");
  ok &= check(near(metric("scheduling in heterogeneous systems").male_mean, 8.2, 0.01),
              "hetero-scheduling male mean 8.2");
  ok &= check(near(metric("impact of arrival rate").mean, 8.6, 0.05),
              "arrival-rate understanding mean 8.6");
  ok &= check(near(metric("scheduling in heterogeneous systems").median, 8.7, 0.5),
              "hetero-scheduling median ~8.7");
  ok &= check(near(metric("overall usefulness").median, 8.8, 0.5),
              "overall usefulness median ~8.8");
  // Gender effect the paper highlights: female medians exceed male medians.
  for (const auto& m : summary.learning_outcomes) {
    ok &= check(m.female_mean > m.male_mean, m.metric + ": female > male scores");
  }

  std::cout << "\n==== §5 quiz — 3 tasks x 4 methods on 4 heterogeneous machines ====\n\n";
  const auto scenario = edu::default_quiz();
  const auto truth = edu::solve_quiz(scenario);
  std::cout << "ground truth (task -> machine), derived from the real policies:\n";
  for (const auto& [method, answer] : truth) {
    std::cout << "  " << util::pad_right(method, 5) << ":";
    for (const auto& [task, machine] : answer) {
      std::cout << "  T" << task << "->" << scenario.eet.machine_type_name(machine);
    }
    std::cout << "\n";
  }

  const int full = edu::grade(scenario, truth);
  edu::AnswerSheet naive;  // the pre-course misconception: fastest machine always
  const auto meet = edu::solve_method(scenario, "MEET");
  for (const auto& method : edu::quiz_methods()) naive[method] = meet;
  const int naive_score = edu::grade(scenario, naive);

  std::cout << "\n  perfect answer sheet: " << full << "/" << edu::max_score(scenario)
            << "\n  naive (always-fastest) sheet: " << naive_score << "/"
            << edu::max_score(scenario) << "\n\n";

  ok &= check(edu::max_score(scenario) == 12, "quiz is worth 12 points (3 tasks x 4 methods)");
  ok &= check(full == 12, "policy-derived ground truth grades to 12/12");
  ok &= check(naive_score < full,
              "the always-fastest misconception loses points (the learning gap the "
              "pre-quiz measures)");

  std::cout << "\nclass pre/post quiz averages (bundled dataset):\n  pre  = "
            << util::format_fixed(summary.quiz_pre_mean, 2)
            << "\n  post = " << util::format_fixed(summary.quiz_post_mean, 2)
            << "\n  improvement = "
            << util::format_fixed(summary.quiz_improvement_percent, 1) << "%\n\n";
  ok &= check(near(summary.quiz_pre_mean, 7.6, 0.01), "pre-quiz mean 7.6 / 12");
  ok &= check(near(summary.quiz_post_mean, 8.94, 0.01), "post-quiz mean 8.94 / 12");
  ok &= check(near(summary.quiz_improvement_percent, 17.6, 0.1),
              "learning improvement 17.6%");
  return ok ? 0 : 1;
}
