// Edge energy study: the research workflow of the paper's §3 ("in [15], we
// have used E2C to examine energy efficiency and fairness of scheduling
// methods on a heterogeneous edge").
//
// Models a battery-constrained edge site running ML inference task types
// (object detection, face recognition, speech recognition) on an ARM CPU +
// GPU + ASIC, and studies the energy/latency/fairness trade-off of MM vs
// ELARE vs FELARE across intensities, writing a CSV a paper plot could use.
//
//   $ ./edge_energy_study [out.csv]
#include <iostream>

#include "e2c.hpp"

int run_study(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_study(argc, argv);
  } catch (const e2c::Error& error) {
    std::cerr << "edge_energy_study: " << error.what() << "\n";
    return 1;
  }
}

int run_study(int argc, char** argv) {
  using namespace e2c;

  // Edge site: low-power ARM host, one discrete GPU, one inference ASIC.
  hetero::EetMatrix eet(
      {"object-detect", "face-rec", "speech-rec"}, {"arm-cpu", "gpu", "asic"},
      {
          {9.0, 1.5, 1.0},  // object detection: accelerators shine
          {7.0, 1.2, 2.5},  // face recognition: GPU best
          {3.0, 2.0, 6.0},  // speech: CPU competitive, ASIC poor
      });
  sched::SystemConfig system;
  system.eet = eet;
  system.machine_queue_capacity = 2;
  const auto specs = hetero::resolve_machine_types(eet.machine_type_names());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    system.machines.push_back({eet.machine_type_name(i), i, specs[i]});
  }

  exp::ExperimentSpec spec;
  spec.system = system;
  spec.policies = {"MM", "ELARE", "FELARE"};
  spec.intensities = {workload::Intensity::kLow, workload::Intensity::kMedium,
                      workload::Intensity::kHigh};
  spec.replications = 10;
  spec.duration = 200.0;
  spec.base_seed = 77;

  const auto result = exp::run_experiment(spec);
  std::cout << viz::render_bar_chart(
      exp::completion_chart(result, "edge ML: completion % by policy"));

  std::cout << "\npolicy,intensity,completion_%,energy_kJ,energy_per_task_J,fairness\n";
  std::vector<std::vector<std::string>> csv{{"policy", "intensity", "completion_percent",
                                             "energy_kJ", "energy_per_task_J",
                                             "fairness_jain"}};
  for (const auto& cell : result.cells) {
    const double per_task = cell.mean_of(
        [](const reports::Metrics& m) { return m.energy_per_completed_task; });
    const std::vector<std::string> row{
        cell.policy,
        workload::intensity_name(cell.intensity),
        util::format_fixed(cell.mean_completion_percent(), 2),
        util::format_fixed(cell.mean_energy_joules() / 1000.0, 2),
        util::format_fixed(per_task, 1),
        util::format_fixed(cell.mean_type_fairness(), 4)};
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::cout << row[i] << (i + 1 < row.size() ? "," : "\n");
    }
    csv.push_back(row);
  }

  if (argc > 1) {
    util::write_csv_file(argv[1], csv);
    std::cout << "\nwrote " << argv[1] << "\n";
  }

  std::cout << "\nReading the numbers: ELARE defers infeasible tasks instead of\n"
               "burning accelerator watts on doomed work, so its energy-per-task\n"
               "stays lowest; FELARE gives up a little of that to keep all three\n"
               "ML services alive (higher Jain fairness) — the trade-off studied\n"
               "in the FELARE paper, reproduced here on synthetic hardware.\n";
  return 0;
}
