// The full class assignment of the paper's §4, automated end to end:
//
//   part 1 — immediate policies (FCFS, MECT, MEET) on the homogeneous
//            system at three intensities; bar chart of completion %.
//   part 2 — the same plus batch policies (MM, MMU, MSD) on the
//            heterogeneous system; bar charts.
//   part 3 — (graduate) a custom fairness policy, compared to the built-ins.
//
// Saves the per-simulation CSV reports the students were asked to export,
// plus a Gantt SVG of one run, into the directory given as argv[1]
// (default: current directory).
//
//   $ ./class_assignment [outdir]
#include <iostream>
#include <string>

#include "e2c.hpp"

namespace {

void run_part(const std::string& banner, const e2c::exp::ExperimentSpec& spec,
              const std::string& chart_title) {
  std::cout << "\n==== " << banner << " ====\n\n";
  const auto result = e2c::exp::run_experiment(spec);
  std::cout << e2c::viz::render_bar_chart(e2c::exp::completion_chart(result, chart_title));
  std::cout << "\n" << e2c::util::to_csv(e2c::exp::result_csv(result));
}

}  // namespace

int run_assignment(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_assignment(argc, argv);
  } catch (const e2c::Error& error) {
    std::cerr << "class_assignment: " << error.what() << "\n";
    return 1;
  }
}

int run_assignment(int argc, char** argv) {
  using namespace e2c;
  const std::string outdir = argc > 1 ? argv[1] : ".";

  // Part 1: homogeneous system, immediate policies, three intensities.
  {
    exp::ExperimentSpec spec;
    spec.system = exp::homogeneous_classroom();
    spec.policies = {"FCFS", "MECT", "MEET"};
    spec.intensities = {workload::Intensity::kLow, workload::Intensity::kMedium,
                        workload::Intensity::kHigh};
    spec.replications = 10;
    spec.duration = 200.0;
    spec.base_seed = 1;
    run_part("part 1 — homogeneous system, immediate policies", spec,
             "completion % (homogeneous, immediate)");
  }

  // Part 2: heterogeneous system, immediate + batch policies.
  {
    exp::ExperimentSpec spec;
    spec.system = exp::heterogeneous_classroom(/*queue=*/2);
    spec.policies = {"FCFS", "MECT", "MEET", "MM", "MMU", "MSD"};
    spec.intensities = {workload::Intensity::kLow, workload::Intensity::kMedium,
                        workload::Intensity::kHigh};
    spec.replications = 10;
    spec.duration = 200.0;
    spec.base_seed = 2;
    run_part("part 2 — heterogeneous system, immediate + batch policies", spec,
             "completion % (heterogeneous)");
  }

  // Part 3 (graduate): the fairness policy against the best batch built-in.
  {
    exp::ExperimentSpec spec;
    spec.system = exp::heterogeneous_classroom(/*queue=*/2);
    spec.policies = {"MM", "FairShare", "FELARE"};
    spec.intensities = {workload::Intensity::kHigh};
    spec.replications = 10;
    spec.duration = 200.0;
    spec.base_seed = 3;
    std::cout << "\n==== part 3 — custom fairness policy (graduate) ====\n\n";
    const auto result = exp::run_experiment(spec);
    std::cout << viz::render_bar_chart(
        exp::completion_chart(result, "completion % at high intensity"));
    std::cout << "\nfairness (Jain index over per-type completion rates):\n";
    for (const std::string& policy : spec.policies) {
      std::cout << "  " << util::pad_right(policy, 10) << " "
                << util::format_fixed(
                       result.cell(policy, workload::Intensity::kHigh)
                           .mean_type_fairness(),
                       4)
                << "\n";
    }
  }

  // The CSV-export workflow: one representative simulation, all four reports
  // saved exactly as the students saved them, plus a Gantt for the write-up.
  {
    auto system = exp::heterogeneous_classroom(2);
    const auto machine_types = exp::machine_types_of(system);
    const auto generator = workload::config_for_intensity(
        system.eet, machine_types, workload::Intensity::kMedium, 120.0, 4);
    sched::Simulation simulation(system, sched::make_policy("MM"));
    simulation.load(workload::generate_workload(system.eet, generator));
    simulation.run();

    reports::save_report_csv(simulation, reports::ReportKind::kFull,
                             outdir + "/assignment_full_report.csv");
    reports::save_report_csv(simulation, reports::ReportKind::kTask,
                             outdir + "/assignment_task_report.csv");
    reports::save_report_csv(simulation, reports::ReportKind::kMachine,
                             outdir + "/assignment_machine_report.csv");
    reports::save_report_csv(simulation, reports::ReportKind::kSummary,
                             outdir + "/assignment_summary_report.csv");
    viz::save_gantt_svg(simulation, outdir + "/assignment_gantt.svg");
    viz::save_html_report(simulation, outdir + "/assignment_report.html");
    std::cout << "\nwrote assignment_{full,task,machine,summary}_report.csv, "
                 "assignment_gantt.svg and assignment_report.html under "
              << outdir << "\n";
  }
  return 0;
}
