// Scalability study: the "scalability" system-level solution the paper's
// abstract lists next to scheduling and load balancing.
//
// Two questions a student can answer with this example:
//   1. Horizontal scaling — how does completion % grow as identical GPU
//      workers are added to a fixed overloaded workload?
//   2. Elasticity — what does an autoscaler save on a bursty day, and what
//      does the boot delay cost?
//
//   $ ./scalability_study
#include <iostream>

#include "e2c.hpp"

namespace {

e2c::sched::SystemConfig fleet_of(std::size_t gpu_workers) {
  // One ingest CPU plus N identical GPU workers.
  std::vector<std::string> machine_names{"x86-cpu"};
  for (std::size_t i = 0; i < gpu_workers; ++i) {
    machine_names.push_back("gpu-" + std::to_string(i + 1));
  }
  std::vector<std::vector<double>> values;
  for (const double cpu_time : {9.0, 5.0, 7.0}) {  // 3 task types
    std::vector<double> row{cpu_time};
    for (std::size_t i = 0; i < gpu_workers; ++i) row.push_back(cpu_time / 4.0);
    values.push_back(row);
  }
  e2c::hetero::EetMatrix eet({"T1", "T2", "T3"}, machine_names, values);
  e2c::sched::SystemConfig config;
  config.machine_queue_capacity = 2;
  config.machines.push_back(
      {"x86-cpu", 0, e2c::hetero::find_machine_type("x86-cpu").value()});
  for (std::size_t i = 0; i < gpu_workers; ++i) {
    auto spec = e2c::hetero::find_machine_type("gpu").value();
    spec.name = machine_names[i + 1];
    config.machines.push_back({machine_names[i + 1], i + 1, spec});
  }
  config.eet = std::move(eet);
  return config;
}

}  // namespace

int main() {
  using namespace e2c;

  // ---- Part 1: horizontal scaling against a FIXED workload -----------------
  // The workload is sized to overload the 1-GPU fleet (rho = 2 against it).
  std::cout << "==== part 1 — horizontal scaling (fixed overloaded workload) ====\n\n";
  const auto reference = fleet_of(1);
  const auto reference_types = exp::machine_types_of(reference);
  const auto generator = workload::config_for_offered_load(
      reference.eet, reference_types, /*rho=*/2.0, /*duration=*/200.0, /*seed=*/31);

  viz::BarChart chart;
  chart.title = "completion % vs fleet size (MM)";
  chart.groups = {"fixed workload"};
  std::cout << "gpu_workers,completion_percent,energy_kJ\n";
  for (std::size_t gpus : {1u, 2u, 4u, 8u}) {
    auto config = fleet_of(gpus);
    // The same trace must be replayable on every fleet: generate it against
    // the reference EET (task types are shared; machine columns differ).
    const auto trace = workload::generate_workload(reference.eet, generator);
    sched::Simulation simulation(config, sched::make_policy("MM"));
    simulation.load(trace);
    simulation.run();
    std::cout << gpus << ","
              << util::format_fixed(simulation.counters().completion_percent(), 2) << ","
              << util::format_fixed(simulation.total_energy_joules() / 1000.0, 2)
              << "\n";
    chart.series.push_back({std::to_string(gpus) + " gpu",
                            {simulation.counters().completion_percent()}});
  }
  std::cout << "\n" << viz::render_bar_chart(chart) << "\n";

  // ---- Part 2: elasticity on a bursty day ----------------------------------
  std::cout << "==== part 2 — elasticity (bursty arrivals, 4-GPU fleet) ====\n\n";
  auto config = fleet_of(4);
  const auto machine_types = exp::machine_types_of(config);
  auto burst_generator = workload::config_for_offered_load(
      config.eet, machine_types, /*rho=*/0.6, /*duration=*/300.0, /*seed=*/32);
  burst_generator.arrival = workload::ArrivalKind::kBurst;
  const auto trace = workload::generate_workload(config.eet, burst_generator);

  std::cout << "config,completion_percent,energy_kJ,peak_online\n";
  for (const bool elastic : {false, true}) {
    auto run_config = config;
    if (elastic) {
      run_config.autoscaler.enabled = true;
      run_config.autoscaler.interval = 2.0;
      run_config.autoscaler.queue_high = 4;
      run_config.autoscaler.queue_low = 0;
      run_config.autoscaler.boot_delay = 3.0;
      run_config.autoscaler.min_online = 1;
      run_config.autoscaler.initially_offline = {1, 2, 3, 4};
    }
    sched::Simulation simulation(run_config, sched::make_policy("MM"));
    simulation.load(trace);
    std::size_t peak_online = simulation.online_machine_count();
    while (simulation.step()) {
      peak_online = std::max(peak_online, simulation.online_machine_count());
    }
    std::cout << (elastic ? "elastic" : "static") << ","
              << util::format_fixed(simulation.counters().completion_percent(), 2) << ","
              << util::format_fixed(simulation.total_energy_joules() / 1000.0, 2) << ","
              << peak_online << "\n";
  }
  std::cout << "\nLesson: throwing machines at an overloaded system has diminishing\n"
               "returns once the batch queue drains, and an autoscaler buys most of\n"
               "the fixed fleet's completion at a fraction of its idle energy.\n";
  return 0;
}
