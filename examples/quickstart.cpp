// Quickstart: the smallest complete E2C program.
//
// Builds a tiny heterogeneous system (CPU + GPU), generates a workload,
// simulates it under MECT, and prints the Summary Report — the whole Fig. 1
// pipeline in ~40 lines of user code.
//
//   $ ./quickstart
#include <iostream>

#include "e2c.hpp"

int main() {
  using namespace e2c;

  // 1. Heterogeneity model: the EET matrix (seconds per task type x machine).
  hetero::EetMatrix eet({"render", "encode"},   // task types
                        {"cpu", "gpu"},         // machine types
                        {{8.0, 2.0},            // render: GPU 4x faster
                         {3.0, 5.0}});          // encode: CPU wins

  // 2. The system: one machine per EET column, catalog power models.
  sched::SystemConfig system = sched::make_default_system(eet);

  // 3. A workload: Poisson arrivals at medium intensity for 60 sim-seconds.
  const auto machine_types = std::vector<hetero::MachineTypeId>{0, 1};
  const workload::GeneratorConfig generator = workload::config_for_intensity(
      eet, machine_types, workload::Intensity::kMedium, /*duration=*/60.0, /*seed=*/42);
  const workload::Workload trace = workload::generate_workload(eet, generator);
  std::cout << "generated " << trace.size() << " tasks\n";

  // 4. Simulate under Minimum-Expected-Completion-Time scheduling.
  sched::Simulation simulation(system, sched::make_policy("MECT"));
  simulation.load(trace);
  simulation.run();

  // 5. Results: headline counters + the Summary Report as CSV text.
  const auto& counters = simulation.counters();
  std::cout << "completed " << counters.completed << "/" << counters.total << " ("
            << counters.completion_percent() << "%), energy "
            << simulation.total_energy_joules() / 1000.0 << " kJ\n\n";
  std::cout << util::to_csv(reports::summary_report(simulation));
  return 0;
}
