// Live terminal visualization: the GUI-replacement demo.
//
// Runs the heterogeneous classroom scenario with an animated ANSI view of
// the batch queue, scheduler and machine queues (the paper's Fig. 1 layout),
// then demonstrates step mode ("Increment") and prints the Missed Tasks
// panel (Fig. 4).
//
//   $ ./live_viz            # animated at 40 sim-seconds per wall second
//   $ ./live_viz 200        # faster animation (speed dial)
//   $ ./live_viz 200 MSD    # pick the policy, like the scheduler menu
#include <iostream>
#include <string>

#include "e2c.hpp"

int main(int argc, char** argv) {
  using namespace e2c;

  const double speed = argc > 1 ? std::stod(argv[1]) : 40.0;
  const std::string policy = argc > 2 ? argv[2] : "MM";

  viz::SimulationController controller([&policy] {
    auto system = exp::heterogeneous_classroom(/*queue=*/2);
    const auto machine_types = exp::machine_types_of(system);
    const auto generator = workload::config_for_intensity(
        system.eet, machine_types, workload::Intensity::kMedium, /*duration=*/40.0,
        /*seed=*/99);
    auto simulation = std::make_unique<sched::Simulation>(system,
                                                          sched::make_policy(policy));
    simulation->load(workload::generate_workload(system.eet, generator));
    return simulation;
  });

  // --- Play: animate every event, throttled by the speed dial.
  controller.set_speed(speed);
  viz::AsciiViewOptions live;
  live.clear_screen = true;
  controller.play([&](const sched::Simulation& simulation) {
    std::cout << viz::render_frame(simulation, live) << std::flush;
    return true;  // never pause; ctrl-c to abort
  });

  // --- Final frame + the Missed Tasks panel of Fig. 4.
  viz::AsciiViewOptions final_frame;
  std::cout << "\n" << viz::render_frame(controller.simulation(), final_frame) << "\n"
            << viz::render_missed_panel(controller.simulation()) << "\n";

  // --- Step mode: reset and single-step the first ten events, printing the
  // upcoming event each time (the "Increment" button workflow).
  controller.reset();
  std::cout << "step mode (first 10 events):\n";
  for (int i = 0; i < 10; ++i) {
    const auto next = controller.simulation().engine().peek_next();
    if (!next) break;
    std::cout << "  next: t=" << util::format_fixed(next->time, 2) << " "
              << core::event_priority_name(next->priority) << " — " << next->label
              << "\n";
    if (!controller.increment()) break;
  }
  std::cout << "...paused. In the GUI you would now press Play to continue.\n";
  return 0;
}
