// Custom scheduler plug-in: the graduate part of the class assignment.
//
// Implements a new batch policy ("LeastLoadedFair") from scratch, registers
// it in the policy registry, and compares it against the built-ins on the
// heterogeneous classroom scenario — exactly the workflow the paper
// advertises for researchers ("adding their own custom-designed scheduling
// methods").
//
//   $ ./custom_scheduler
#include <algorithm>
#include <iostream>

#include "e2c.hpp"

namespace {

/// A student policy: pick the pending task of the task type with the fewest
/// completions so far (fairness), map it to the least-loaded feasible
/// machine (not necessarily the fastest) to spread wear.
class LeastLoadedFairPolicy final : public e2c::sched::Policy {
 public:
  [[nodiscard]] std::string name() const override { return "LeastLoadedFair"; }
  [[nodiscard]] e2c::sched::PolicyMode mode() const override {
    return e2c::sched::PolicyMode::kBatch;
  }

  void schedule_into(e2c::sched::SchedulingContext& context,
                     std::vector<e2c::sched::Assignment>& assignments) override {
    assignments.clear();
    auto pending = context.batch_queue();
    while (!pending.empty()) {
      // Fairness: most-suffering task type first.
      const auto chosen = std::min_element(
          pending.begin(), pending.end(), [&](const auto* a, const auto* b) {
            return context.type_ontime_rate(a->type) < context.type_ontime_rate(b->type);
          });
      const auto* task = *chosen;

      // Least-loaded machine with space (ready time, not EET).
      std::size_t best = context.machines().size();
      for (std::size_t m = 0; m < context.machines().size(); ++m) {
        const auto& view = context.machines()[m];
        if (view.free_slots == 0) continue;
        if (best == context.machines().size() ||
            view.ready_time < context.machines()[best].ready_time) {
          best = m;
        }
      }
      if (best == context.machines().size()) break;  // saturated

      assignments.push_back({task->id, context.machines()[best].id});
      context.commit(*task, best);
      pending.erase(chosen);
    }
  }
};

}  // namespace

int main() {
  using namespace e2c;

  // Register the new policy — one line, same as the built-ins.
  sched::PolicyRegistry::instance().register_policy(
      "LeastLoadedFair", [] { return std::make_unique<LeastLoadedFairPolicy>(); });

  // Compare against the built-in roster on the heterogeneous classroom
  // system at medium and high intensity (paired workloads).
  exp::ExperimentSpec spec;
  spec.system = exp::heterogeneous_classroom(/*queue=*/2);
  spec.policies = {"MM", "MSD", "FairShare", "LeastLoadedFair"};
  spec.intensities = {workload::Intensity::kMedium, workload::Intensity::kHigh};
  spec.replications = 10;
  spec.duration = 150.0;
  spec.base_seed = 2023;

  const auto result = exp::run_experiment(spec);
  std::cout << viz::render_bar_chart(
      exp::completion_chart(result, "custom policy vs built-ins (completion %)"));

  std::cout << "\nfairness across task types (Jain index, 1.0 = perfectly fair):\n";
  for (const std::string& policy : spec.policies) {
    std::cout << "  " << util::pad_right(policy, 16) << " "
              << util::format_fixed(
                     result.cell(policy, workload::Intensity::kHigh).mean_type_fairness(),
                     4)
              << "\n";
  }
  std::cout << "\nLesson: fairness-aware policies trade a little completion for a\n"
               "more even service across task types — run the numbers above.\n";
  return 0;
}
