# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("core")
subdirs("fault")
subdirs("hetero")
subdirs("workload")
subdirs("mem")
subdirs("machines")
subdirs("net")
subdirs("sched")
subdirs("reports")
subdirs("viz")
subdirs("exp")
subdirs("edu")
subdirs("cli")
